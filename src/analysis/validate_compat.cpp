// netlist::validate() compatibility adapter over rls::lint.
//
// The original 65-line validator (netlist/validate.cpp) is superseded by
// the lint framework; this TU keeps its API and semantics alive by
// projecting lint diagnostics back onto the legacy Violation kinds. Codes
// the old validator never produced (unobservable cones, scan-chain
// integrity, resistance predictions) are deliberately dropped so existing
// is_clean() callers — the synthetic generator's cleanliness contract in
// particular — keep their exact acceptance set.
//
// Lint diagnostics are deterministically sorted, which also upgrades
// validate(): every unreachable gate is reported, in ascending gate-id
// order, on every run.
#include "netlist/validate.hpp"

#include "analysis/lint.hpp"

namespace rls::netlist {

std::vector<Violation> validate(const Netlist& nl) {
  analysis::LintOptions opts;
  opts.resistance = false;
  const analysis::LintResult lint = analysis::run_lint(nl, opts);

  std::vector<Violation> out;
  for (const analysis::Diagnostic& d : lint.diagnostics) {
    if (d.code == "RLS-E001") {
      out.push_back({Violation::Kind::kCombinationalLoop, d.signal, d.message});
    } else if (d.code == "RLS-E004") {
      out.push_back({Violation::Kind::kNoOutputs, kNoSignal, d.message});
    } else if (d.code == "RLS-W101" || d.code == "RLS-W104") {
      out.push_back({Violation::Kind::kDanglingSignal, d.signal, d.message});
    } else if (d.code == "RLS-W102") {
      out.push_back({Violation::Kind::kUnreachableFromInput, d.signal,
                     d.message});
    }
  }
  return out;
}

bool is_clean(const Netlist& nl) { return validate(nl).empty(); }

}  // namespace rls::netlist
