// rls::analysis::sta — static testability analysis.
//
// Three cooperating passes over a CompiledCircuit, all exact with respect
// to the repo's dynamic scan model (full scan: every test scan-loads an
// arbitrary state and scans the captured state out; see DESIGN.md §15):
//
//   1. Ternary constant propagation. Every net gets a value in {0, 1, X}
//      by abstract interpretation of the gate functions over the ternary
//      lattice: constants seed 0/1, primary inputs and flip-flop outputs
//      are X (a scan load can force either value), and combinational
//      gates evaluate in levelized order. The sequential loop is iterated
//      to a fixpoint; under full scan the state stays X, so the loop
//      converges in one sweep, but the iteration is kept so the pass
//      stays correct if a non-scan state model is ever plugged in.
//
//   2. SCOAP controllability / observability (Goldstein's integer
//      measures, the Snippet-3 classic). CC0/CC1 forward in levelized
//      order, CO backward, with kScoapInf as the saturating "impossible"
//      sentinel. Scan-aware boundary: primary inputs and scan cells cost
//      one unit to control, a scan cell's D net and Q net cost one unit
//      to observe (capture + shift out — the limited-scan shift semantics
//      of the paper make every state bit observable at unit cost).
//
//   3. Per-fault untestability classification. A collapsed stuck-at fault
//      is kUnexcitable when its line is ternary-constant at the stuck
//      value, and kUnobservable when no fault difference can ever reach a
//      primary output or a flip-flop D pin. Propagation is blocked by a
//      "dead" gate: one with a side input that is ternary-constant at the
//      gate's controlling value AND lies outside the fault's own
//      combinational fanout cone. The cone exclusion is the soundness
//      linchpin — a constant net inside the fault's cone need not stay
//      constant in the faulty machine, so it must not be used to block.
//      Flip-flop Q-line faults are never untestable (they corrupt the
//      scan path itself, which is read every test), and a D-pin fault is
//      untestable only when unexcitable (a captured difference is always
//      scanned out). Both rules mirror atpg::classify.
//
// Soundness contract (enforced by fuzz oracle #6 and the registry sweep
// in tools/run_static_checks.sh): a fault this pass calls untestable is
// never detected by any exact fault-simulation engine. The reverse is not
// claimed — reconvergence can make a statically-"observable" fault
// actually undetectable; those are PODEM's to prove.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sim/compiled.hpp"

namespace rls::analysis {

/// SCOAP "impossible" sentinel; all arithmetic saturates at it.
inline constexpr std::uint32_t kScoapInf = 0xFFFF'FFFFu;

/// Saturating SCOAP addition.
[[nodiscard]] constexpr std::uint32_t scoap_add(std::uint32_t a,
                                                std::uint32_t b) noexcept {
  if (a == kScoapInf || b == kScoapInf) return kScoapInf;
  const std::uint64_t s = std::uint64_t{a} + b;
  return s >= kScoapInf ? kScoapInf - 1 : static_cast<std::uint32_t>(s);
}

/// Ternary net value: 0, 1, or kX (unknown / free).
inline constexpr std::int8_t kX = -1;

/// Why a fault is statically untestable (kTestable = it is not).
enum class UntestableReason : std::uint8_t {
  kTestable = 0,
  kUnexcitable,    ///< line is ternary-constant at the stuck value
  kUnobservable,   ///< no difference can reach a PO or a flip-flop D pin
};

/// Canonical reason name: "testable", "unexcitable", "unobservable".
[[nodiscard]] const char* untestable_reason_name(UntestableReason r) noexcept;

/// The full static-analysis result for one circuit.
struct StaReport {
  /// Per-signal ternary value (0, 1, or kX).
  std::vector<std::int8_t> value;
  /// SCOAP measures per signal, kScoapInf = impossible.
  std::vector<std::uint32_t> cc0, cc1, co;
  std::uint32_t fixpoint_iters = 0;     ///< sequential sweeps to converge
  std::size_t num_const_nets = 0;       ///< nets with value != kX
  std::size_t num_derived_const = 0;    ///< const nets not driven by Const
  std::size_t num_co_inf = 0;           ///< nets with co == kScoapInf

  // ---- propagation machinery (consumed by classify_faults) ----
  /// Signals from which some observation point (PO or flip-flop D pin) is
  /// structurally reachable, ignoring dead gates (the optimistic closure).
  std::vector<std::uint8_t> observable;
  /// Per-gate list of (pin, fanin) pairs whose net is ternary-constant at
  /// the gate's controlling value — the dead-gate candidates. CSR layout.
  std::vector<std::uint32_t> blocking_off;
  std::vector<std::uint32_t> blocking_pin;
  std::vector<netlist::SignalId> blocking_net;
  /// True when blocking_pin is empty: no gate can be dead, so the global
  /// `observable` closure alone decides observability (no per-fault BFS).
  bool no_blocking = true;
};

/// Runs passes 1 and 2 plus the propagation precomputation. Deterministic
/// and single-threaded; cost O(signals + edges).
[[nodiscard]] StaReport analyze(const sim::CompiledCircuit& cc);

/// Classifies one fault (see header comment for the model). Per-fault BFS
/// scratch is thread-local, so calls are cheap to repeat and safe across
/// circuits on distinct threads.
[[nodiscard]] UntestableReason classify_fault(const StaReport& r,
                                              const sim::CompiledCircuit& cc,
                                              const fault::Fault& f);

/// Per-fault reasons plus summary counts for a fault list.
struct StaFaultClasses {
  std::vector<UntestableReason> reason;  ///< index-aligned with the input
  std::size_t num_untestable = 0;
  std::size_t num_unexcitable = 0;
  std::size_t num_unobservable = 0;

  /// 0/1 mask (1 = untestable), index-aligned — the FaultList::prune and
  /// Procedure2Options::prune_mask payload.
  [[nodiscard]] std::vector<std::uint8_t> untestable_mask() const;
};

/// Classifies every fault in `faults`.
[[nodiscard]] StaFaultClasses classify_faults(
    const StaReport& r, const sim::CompiledCircuit& cc,
    const std::vector<fault::Fault>& faults);

/// The "sta" trace event (canonical schema: nets, const_nets,
/// derived_const, co_inf, fixpoint_iters, faults, untestable, unexcitable,
/// unobservable).
[[nodiscard]] obs::TraceEvent sta_trace_event(const StaReport& r,
                                              const StaFaultClasses& cls,
                                              std::size_t num_faults);

/// Adds the analysis.sta.* counters.
void add_sta_counters(obs::CounterRegistry& counters, const StaReport& r,
                      const StaFaultClasses& cls);

/// Machine-checks the report's internal invariants over `faults`:
///   * a ternary-constant net has kScoapInf controllability of the
///     opposite value;
///   * a fault classified unobservable on net s has co[s] == kScoapInf;
///   * flip-flop Q-line faults are never untestable;
///   * every unexcitable fault's line is ternary-constant at the stuck
///     value.
/// Returns true when consistent; otherwise false with a one-line
/// diagnosis in *why. This is the `rls analyze --untestable` CI gate.
[[nodiscard]] bool sta_self_check(const StaReport& r,
                                  const sim::CompiledCircuit& cc,
                                  const std::vector<fault::Fault>& faults,
                                  std::string* why);

/// Options for the deterministic JSONL rendering of an analysis.
struct AnalyzeJsonOptions {
  bool scoap = false;       ///< emit one "sta_net" event per signal
  bool untestable = true;   ///< emit one "sta_fault" event per untestable
};

/// Renders the analysis as deterministic JSONL: one "sta" summary event,
/// then (optionally) per-net and per-untestable-fault events in ascending
/// signal/fault order. Byte-identical across runs and thread counts.
[[nodiscard]] std::string analyze_jsonl(const sim::CompiledCircuit& cc,
                                        const std::vector<fault::Fault>& faults,
                                        const AnalyzeJsonOptions& opt);

}  // namespace rls::analysis
