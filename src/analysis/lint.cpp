#include "analysis/lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "analysis/sta.hpp"
#include "fault/collapse.hpp"
#include "netlist/bench_io.hpp"
#include "report/format.hpp"

namespace rls::analysis {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

std::string_view to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kInfo: return "info";
  }
  return "?";
}

std::size_t LintResult::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) n += (d.severity == s);
  return n;
}

int LintResult::exit_code() const noexcept {
  if (has_errors()) return 1;
  if (has_warnings()) return 2;
  return 0;
}

namespace {

Diagnostic make(std::string code, Severity sev, SignalId signal,
                std::string object, std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = sev;
  d.signal = signal;
  d.object = std::move(object);
  d.message = std::move(message);
  return d;
}

/// Formats a probability with enough digits to distinguish resistant
/// faults without dragging wall-clock noise into golden outputs.
std::string prob(double p) { return report::format_fixed(p, 6); }

// ---- structural checks ----------------------------------------------------

void check_no_outputs(const Netlist& nl, const LintOptions&,
                      std::vector<Diagnostic>& out) {
  if (nl.primary_outputs().empty()) {
    out.push_back(make("RLS-E004", Severity::kError, netlist::kNoSignal, "",
                       "circuit has no primary outputs"));
  }
}

/// Iterative Tarjan SCC over the combinational subgraph (fanin edges
/// restricted to combinational gates). One diagnostic per non-trivial SCC
/// (or self-loop), carrying a concrete cycle path as the witness.
void check_comb_cycles(const Netlist& nl, const LintOptions&,
                       std::vector<Diagnostic>& out) {
  const std::size_t n = nl.num_gates();
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<SignalId> stack;
  std::uint32_t next_index = 0;

  auto comb = [&](SignalId id) {
    return netlist::is_combinational(nl.gate(id).type);
  };

  struct Frame {
    SignalId id;
    std::size_t pin;
  };
  std::vector<std::vector<SignalId>> sccs;
  std::vector<Frame> dfs;

  for (SignalId root = 0; root < n; ++root) {
    if (!comb(root) || index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const auto& fanin = nl.gate(f.id).fanin;
      if (f.pin < fanin.size()) {
        const SignalId in = fanin[f.pin++];
        if (!comb(in)) continue;
        if (index[in] == kUnvisited) {
          index[in] = lowlink[in] = next_index++;
          stack.push_back(in);
          on_stack[in] = 1;
          dfs.push_back({in, 0});
        } else if (on_stack[in]) {
          lowlink[f.id] = std::min(lowlink[f.id], index[in]);
        }
        continue;
      }
      // f.id is fully explored.
      if (lowlink[f.id] == index[f.id]) {
        std::vector<SignalId> scc;
        for (;;) {
          const SignalId v = stack.back();
          stack.pop_back();
          on_stack[v] = 0;
          scc.push_back(v);
          if (v == f.id) break;
        }
        const auto& self = nl.gate(f.id).fanin;
        const bool self_loop =
            scc.size() == 1 &&
            std::find(self.begin(), self.end(), f.id) != self.end();
        if (scc.size() > 1 || self_loop) sccs.push_back(std::move(scc));
      }
      const SignalId done = f.id;
      dfs.pop_back();
      if (!dfs.empty()) {
        lowlink[dfs.back().id] =
            std::min(lowlink[dfs.back().id], lowlink[done]);
      }
    }
  }

  for (std::vector<SignalId>& scc : sccs) {
    std::sort(scc.begin(), scc.end());
    const std::set<SignalId> members(scc.begin(), scc.end());
    // Witness cycle: walk producer-wards from the smallest member, always
    // taking the smallest in-SCC fanin; strong connectivity guarantees the
    // walk closes on itself.
    std::vector<SignalId> walk{scc.front()};
    std::map<SignalId, std::size_t> seen{{scc.front(), 0}};
    std::vector<SignalId> cycle;
    for (;;) {
      SignalId next = netlist::kNoSignal;
      for (SignalId in : nl.gate(walk.back()).fanin) {
        if (members.count(in) && (next == netlist::kNoSignal || in < next)) {
          next = in;
        }
      }
      const auto it = seen.find(next);
      if (it != seen.end()) {
        cycle.assign(walk.begin() + static_cast<std::ptrdiff_t>(it->second),
                     walk.end());
        break;
      }
      seen.emplace(next, walk.size());
      walk.push_back(next);
    }
    // The walk followed fanin (consumer -> producer) edges; report in
    // driving direction.
    std::reverse(cycle.begin(), cycle.end());
    const auto head =
        std::min_element(cycle.begin(), cycle.end());
    std::rotate(cycle.begin(), head, cycle.end());

    std::string path_text;
    for (SignalId id : cycle) {
      path_text += nl.signal_name(id);
      path_text += " -> ";
    }
    path_text += nl.signal_name(cycle.front());
    Diagnostic d = make("RLS-E001", Severity::kError, scc.front(),
                        nl.signal_name(scc.front()),
                        "combinational cycle through " +
                            std::to_string(scc.size()) +
                            " gate(s): " + path_text);
    d.path = cycle;
    out.push_back(std::move(d));
  }
}

void check_dangling(const Netlist& nl, const LintOptions&,
                    std::vector<Diagnostic>& out) {
  for (SignalId id = 0; id < nl.num_gates(); ++id) {
    const GateType t = nl.gate(id).type;
    if (nl.fanout()[id].empty() && !nl.is_primary_output(id)) {
      if (t == GateType::kDff) {
        out.push_back(make("RLS-W104", Severity::kWarning, id,
                           nl.signal_name(id),
                           "state variable '" + nl.signal_name(id) +
                               "' is scanned but its Q output never feeds "
                               "logic and is not a primary output"));
      } else {
        out.push_back(make("RLS-W101", Severity::kWarning, id,
                           nl.signal_name(id),
                           "signal '" + nl.signal_name(id) +
                               "' drives nothing and is not an output"));
      }
    }
    if (t == GateType::kDff) {
      const GateType d = nl.gate(nl.gate(id).fanin[0]).type;
      if (d == GateType::kConst0 || d == GateType::kConst1) {
        out.push_back(make("RLS-W105", Severity::kWarning, id,
                           nl.signal_name(id),
                           "state variable '" + nl.signal_name(id) +
                               "' captures a constant every cycle (D is "
                               "tied to " + std::string(to_string(d)) + ")"));
      }
    }
  }
}

void check_reachability(const Netlist& nl, const LintOptions&,
                        std::vector<Diagnostic>& out) {
  // Forward closure from sources (PIs, constants, DFF outputs). Reported
  // in ascending gate-id order — the full set, every run, so CI diffs of
  // lint output are stable (see test_lint.cpp).
  std::vector<std::uint8_t> reached(nl.num_gates(), 0);
  std::vector<SignalId> frontier;
  for (SignalId id = 0; id < nl.num_gates(); ++id) {
    const GateType t = nl.gate(id).type;
    if (netlist::is_source(t) || t == GateType::kDff) {
      reached[id] = 1;
      frontier.push_back(id);
    }
  }
  while (!frontier.empty()) {
    const SignalId id = frontier.back();
    frontier.pop_back();
    for (SignalId consumer : nl.fanout()[id]) {
      if (!reached[consumer]) {
        reached[consumer] = 1;
        frontier.push_back(consumer);
      }
    }
  }
  for (SignalId id = 0; id < nl.num_gates(); ++id) {
    if (!reached[id]) {
      out.push_back(make("RLS-W102", Severity::kWarning, id,
                         nl.signal_name(id),
                         "signal '" + nl.signal_name(id) +
                             "' is not driven (directly or transitively) by "
                             "any input or state variable"));
    }
  }
}

void check_observability(const Netlist& nl, const LintOptions&,
                         std::vector<Diagnostic>& out) {
  // Backward closure from the observation points: primary outputs, DFF D
  // nets (captured then scanned out) and DFF Q lines themselves (read
  // directly by the final scan-out). A signal outside the closure can
  // never influence any observed value.
  std::vector<std::uint8_t> observable(nl.num_gates(), 0);
  std::vector<SignalId> frontier;
  auto seed = [&](SignalId id) {
    if (!observable[id]) {
      observable[id] = 1;
      frontier.push_back(id);
    }
  };
  for (SignalId id : nl.primary_outputs()) seed(id);
  for (SignalId ff : nl.flip_flops()) {
    seed(ff);
    seed(nl.gate(ff).fanin[0]);
  }
  while (!frontier.empty()) {
    const SignalId id = frontier.back();
    frontier.pop_back();
    if (!netlist::is_combinational(nl.gate(id).type)) continue;
    for (SignalId in : nl.gate(id).fanin) seed(in);
  }
  for (SignalId id = 0; id < nl.num_gates(); ++id) {
    if (observable[id] || nl.fanout()[id].empty()) continue;
    // Dangling signals already carry W101/W104; this code is for live
    // fanout whose entire cone dead-ends.
    out.push_back(make(
        "RLS-W103", Severity::kWarning, id, nl.signal_name(id),
        "signal '" + nl.signal_name(id) +
            "' has fanout but no structural path to any primary output or "
            "state capture (unobservable cone)"));
  }
}

void check_scan_chain(const Netlist& nl, const LintOptions& opts,
                      std::vector<Diagnostic>& out) {
  const std::size_t n_sv = nl.num_state_vars();
  const scan::ChainConfig config =
      opts.chain ? *opts.chain : scan::ChainConfig::single(n_sv);

  auto ff_name = [&](std::size_t pos) -> std::string {
    return pos < n_sv ? nl.signal_name(nl.flip_flops()[pos])
                      : "position " + std::to_string(pos);
  };
  auto ff_id = [&](std::size_t pos) {
    return pos < n_sv ? nl.flip_flops()[pos] : netlist::kNoSignal;
  };

  std::vector<std::uint32_t> uses(n_sv, 0);
  for (std::size_t c = 0; c < config.chains.size(); ++c) {
    for (std::size_t k = 0; k < config.chains[c].size(); ++k) {
      const std::size_t pos = config.chains[c][k];
      if (pos >= n_sv) {
        out.push_back(make(
            "RLS-E005", Severity::kError, netlist::kNoSignal,
            "chain" + std::to_string(c),
            "chain " + std::to_string(c) + " element " + std::to_string(k) +
                " references flip-flop position " + std::to_string(pos) +
                " but the circuit has only " + std::to_string(n_sv) +
                " state variables"));
        continue;
      }
      ++uses[pos];
    }
  }
  for (std::size_t pos : config.unscanned) {
    if (pos >= n_sv) {
      out.push_back(make("RLS-E005", Severity::kError, netlist::kNoSignal,
                         "unscanned",
                         "unscanned list references flip-flop position " +
                             std::to_string(pos) +
                             " but the circuit has only " +
                             std::to_string(n_sv) + " state variables"));
      continue;
    }
    ++uses[pos];
  }
  for (std::size_t pos = 0; pos < n_sv; ++pos) {
    if (uses[pos] > 1) {
      out.push_back(make(
          "RLS-E006", Severity::kError, ff_id(pos), ff_name(pos),
          "flip-flop '" + ff_name(pos) + "' (position " +
              std::to_string(pos) + ") appears " + std::to_string(uses[pos]) +
              " times across the scan configuration"));
    } else if (uses[pos] == 0) {
      out.push_back(make(
          "RLS-E007", Severity::kError, ff_id(pos), ff_name(pos),
          "flip-flop '" + ff_name(pos) + "' (position " +
              std::to_string(pos) +
              ") is in no scan chain and not declared unscanned (broken "
              "chain: scan-in/scan-out would skip it)"));
    }
  }
  if (!config.unscanned.empty()) {
    out.push_back(make("RLS-I201", Severity::kInfo, netlist::kNoSignal, "",
                       std::to_string(config.unscanned.size()) + " of " +
                           std::to_string(n_sv) +
                           " flip-flops unscanned (partial scan)"));
  }
}

constexpr Check kChecks[] = {
    {"no-outputs", &check_no_outputs},
    {"comb-cycle", &check_comb_cycles},
    {"dangling", &check_dangling},
    {"reachability", &check_reachability},
    {"observability", &check_observability},
    {"scan-chain", &check_scan_chain},
};

void count_severities(LintResult& res) {
  res.counters.add("lint.diags", res.diagnostics.size());
  res.counters.add("lint.errors", res.count(Severity::kError));
  res.counters.add("lint.warnings", res.count(Severity::kWarning));
  res.counters.add("lint.infos", res.count(Severity::kInfo));
}

void run_resistance_pass(const Netlist& nl, const LintOptions& opts,
                         LintResult& res) {
  const sim::CompiledCircuit cc(nl);
  const std::vector<fault::Fault> universe = fault::collapsed_universe(nl);
  res.resistance =
      predict_resistance(cc, universe, opts.budget, opts.escape_threshold);
  res.counters.add("lint.faults_analyzed", universe.size());
  res.counters.add("lint.resistant_faults", res.resistance.flagged.size());

  res.diagnostics.push_back(make(
      "RLS-I300", Severity::kInfo, netlist::kNoSignal, "",
      std::to_string(res.resistance.flagged.size()) + " of " +
          std::to_string(universe.size()) +
          " collapsed faults predicted random-pattern resistant (escape >= " +
          prob(opts.escape_threshold) + " over " +
          std::to_string(opts.budget.pattern_applications()) +
          " patterns: LA=" + std::to_string(opts.budget.l_a) +
          " LB=" + std::to_string(opts.budget.l_b) +
          " N=" + std::to_string(opts.budget.n) + ")"));

  // Report the worst offenders individually, capped; "worst" = highest
  // escape probability, ties by canonical fault order.
  std::vector<std::size_t> ranked = res.resistance.flagged;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return res.resistance.faults[a].escape_prob >
                            res.resistance.faults[b].escape_prob;
                   });
  if (ranked.size() > opts.max_resistant_report) {
    ranked.resize(opts.max_resistant_report);
  }
  for (std::size_t i : ranked) {
    const FaultEscape& fe = res.resistance.faults[i];
    res.diagnostics.push_back(
        make("RLS-I301", Severity::kInfo, fe.f.gate,
             nl.signal_name(fe.f.gate),
             "fault " + fault::fault_name(nl, fe.f) +
                 " predicted random-pattern resistant: detection probability " +
                 prob(fe.det_prob) + ", escape probability " +
                 prob(fe.escape_prob)));
  }
}

/// Static-testability pass (rls::analysis::sta): W107 for every derived
/// constant net (logic that no input assignment can toggle) and an I302
/// summary when any collapsed fault is provably untestable. Like the
/// resistance pass, this needs a CompiledCircuit, so it only runs on
/// acyclic netlists.
void run_sta_pass(const Netlist& nl, const LintOptions&, LintResult& res) {
  const sim::CompiledCircuit cc(nl);
  const StaReport r = analyze(cc);
  for (SignalId id = 0; id < nl.num_gates(); ++id) {
    if (r.value[id] == kX) continue;
    const GateType t = nl.gate(id).type;
    if (t == GateType::kConst0 || t == GateType::kConst1) continue;
    res.diagnostics.push_back(make(
        "RLS-W107", Severity::kWarning, id, nl.signal_name(id),
        "net '" + nl.signal_name(id) + "' is constant " +
            std::to_string(static_cast<int>(r.value[id])) +
            " for every input assignment but is not driven by a constant "
            "gate (dead logic)"));
  }
  const std::vector<fault::Fault> universe = fault::collapsed_universe(nl);
  const StaFaultClasses cls = classify_faults(r, cc, universe);
  if (cls.num_untestable > 0) {
    res.diagnostics.push_back(make(
        "RLS-I302", Severity::kInfo, netlist::kNoSignal, "",
        std::to_string(cls.num_untestable) + " of " +
            std::to_string(universe.size()) +
            " collapsed faults statically untestable (" +
            std::to_string(cls.num_unexcitable) + " unexcitable, " +
            std::to_string(cls.num_unobservable) +
            " unobservable); `rls analyze --untestable` lists them"));
  }
  res.counters.add("lint.sta_const_nets", r.num_const_nets);
  res.counters.add("lint.sta_untestable", cls.num_untestable);
}

}  // namespace

std::span<const Check> structural_checks() { return kChecks; }

LintResult run_lint(const Netlist& nl, const LintOptions& opts) {
  if (!nl.finalized()) {
    throw std::invalid_argument("run_lint requires a finalized netlist");
  }
  LintResult res;
  for (const Check& check : kChecks) {
    check.run(nl, opts, res.diagnostics);
    res.counters.add("lint.checks", 1);
  }
  std::sort(res.diagnostics.begin(), res.diagnostics.end());

  const bool cyclic = std::any_of(
      res.diagnostics.begin(), res.diagnostics.end(),
      [](const Diagnostic& d) { return d.code == "RLS-E001"; });
  if (!cyclic) {
    run_sta_pass(nl, opts, res);
    if (opts.resistance) run_resistance_pass(nl, opts, res);
    std::sort(res.diagnostics.begin(), res.diagnostics.end());
  }
  count_severities(res);
  return res;
}

LintResult run_lint_source(std::string_view bench_text, std::string name,
                           const LintOptions& opts) {
  LintResult res;
  std::vector<netlist::BenchSyntaxError> syntax;
  const std::vector<netlist::BenchStatement> statements =
      netlist::scan_bench(bench_text, &syntax);
  res.counters.add("lint.checks", 1);  // the source-level pass

  for (const netlist::BenchSyntaxError& e : syntax) {
    res.diagnostics.push_back(
        make("RLS-E010", Severity::kError, netlist::kNoSignal, e.token,
             "line " + std::to_string(e.line) + ": " + e.message +
                 " (offending token: '" + e.token + "')"));
  }

  // Definition map: INPUT declarations and assignment left-hand sides.
  // More than one definition of a name is a multiply-driven net — the
  // defect the Netlist builder rejects outright and lint must name.
  std::map<std::string, std::vector<int>> defs;
  using Kind = netlist::BenchStatement::Kind;
  for (const netlist::BenchStatement& st : statements) {
    if (st.kind == Kind::kInput || st.kind == Kind::kAssign) {
      defs[st.lhs].push_back(st.line);
    }
  }
  for (const auto& [net, lines] : defs) {
    if (lines.size() < 2) continue;
    std::string where;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      where += (i ? ", " : "") + std::to_string(lines[i]);
    }
    res.diagnostics.push_back(
        make("RLS-E003", Severity::kError, netlist::kNoSignal, net,
             "net '" + net + "' is driven " + std::to_string(lines.size()) +
                 " times (lines " + where + ")"));
  }

  // Unknown gate types.
  for (const netlist::BenchStatement& st : statements) {
    if (st.kind != Kind::kAssign) continue;
    netlist::GateType type{};
    if (!netlist::gate_type_from_string(st.op, type) ||
        type == GateType::kInput) {
      res.diagnostics.push_back(
          make("RLS-E011", Severity::kError, netlist::kNoSignal, st.op,
               "line " + std::to_string(st.line) + ": unknown gate type '" +
                   st.op + "' driving '" + st.lhs + "'"));
    }
  }

  // Undriven nets: referenced (fanin or OUTPUT) but never defined. These
  // are the X sources of the design — trace them forward to every primary
  // output they taint.
  std::map<std::string, std::vector<int>> undriven;  // net -> referencing lines
  for (const netlist::BenchStatement& st : statements) {
    if (st.kind == Kind::kAssign) {
      for (const std::string& arg : st.args) {
        if (!defs.count(arg)) undriven[arg].push_back(st.line);
      }
    } else if (st.kind == Kind::kOutput && !defs.count(st.lhs)) {
      undriven[st.lhs].push_back(st.line);
    }
  }
  for (const auto& [net, lines] : undriven) {
    std::string where;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      where += (i ? ", " : "") + std::to_string(lines[i]);
    }
    res.diagnostics.push_back(
        make("RLS-E002", Severity::kError, netlist::kNoSignal, net,
             "net '" + net + "' is referenced (lines " + where +
                 ") but never driven — an X source"));
  }

  // X-source tracing: fixpoint taint propagation over the assignment
  // graph (handles feedback through DFFs and even malformed cycles).
  if (!undriven.empty()) {
    std::set<std::string> tainted;
    std::map<std::string, std::set<std::string>> sources;  // net -> X roots
    for (const auto& [net, lines] : undriven) {
      tainted.insert(net);
      sources[net].insert(net);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const netlist::BenchStatement& st : statements) {
        if (st.kind != Kind::kAssign) continue;
        for (const std::string& arg : st.args) {
          if (!tainted.count(arg)) continue;
          const std::size_t before = sources[st.lhs].size();
          sources[st.lhs].insert(sources[arg].begin(), sources[arg].end());
          if (tainted.insert(st.lhs).second ||
              sources[st.lhs].size() != before) {
            changed = true;
          }
        }
      }
    }
    for (const netlist::BenchStatement& st : statements) {
      if (st.kind != Kind::kOutput || !tainted.count(st.lhs) ||
          undriven.count(st.lhs)) {
        continue;
      }
      std::string roots;
      std::size_t shown = 0;
      for (const std::string& r : sources[st.lhs]) {
        if (shown == 4) {
          roots += ", ...";
          break;
        }
        roots += (shown ? ", '" : "'") + r + "'";
        ++shown;
      }
      res.diagnostics.push_back(
          make("RLS-W106", Severity::kWarning, netlist::kNoSignal, st.lhs,
               "output '" + st.lhs + "' is X-tainted by undriven net(s) " +
                   roots));
    }
  }

  std::sort(res.diagnostics.begin(), res.diagnostics.end());
  if (res.has_errors()) {
    // The text does not build; netlist-level checks are unreachable.
    count_severities(res);
    return res;
  }

  try {
    const Netlist nl = netlist::parse_bench(bench_text, std::move(name));
    LintResult structural = run_lint(nl, opts);
    for (Diagnostic& d : structural.diagnostics) {
      res.diagnostics.push_back(std::move(d));
    }
    res.counters.merge(structural.counters);
    res.resistance = std::move(structural.resistance);
    std::sort(res.diagnostics.begin(), res.diagnostics.end());
    // Severity totals were already folded in via the merged counters.
    return res;
  } catch (const netlist::BenchParseError& e) {
    // Defects only the builder catches (arity violations and the like).
    res.diagnostics.push_back(make("RLS-E010", Severity::kError,
                                   netlist::kNoSignal, "", e.what()));
    std::sort(res.diagnostics.begin(), res.diagnostics.end());
    count_severities(res);
    return res;
  }
}

std::string format_text(const Diagnostic& d) {
  std::string out(to_string(d.severity));
  out += "[" + d.code + "]";
  if (!d.object.empty()) {
    out += " " + d.object + ":";
  }
  out += " " + d.message;
  return out;
}

obs::TraceEvent to_trace_event(const Diagnostic& d) {
  obs::TraceEvent ev("lint");
  ev.str("code", d.code).str("sev", std::string(to_string(d.severity)));
  if (d.signal != netlist::kNoSignal) {
    ev.u64("signal", d.signal);
  }
  ev.str("object", d.object).str("msg", d.message);
  return ev;
}

void emit(const LintResult& result, obs::TraceSink& sink) {
  for (const Diagnostic& d : result.diagnostics) {
    sink.write(to_trace_event(d));
  }
  obs::TraceEvent summary("lint_summary");
  summary.u64("errors", result.count(Severity::kError))
      .u64("warnings", result.count(Severity::kWarning))
      .u64("infos", result.count(Severity::kInfo));
  for (const auto& [name, total] : result.counters.snapshot()) {
    summary.u64(name, total);
  }
  sink.write(summary);
  sink.flush();
}

}  // namespace rls::analysis
