#include "analysis/sta.hpp"

#include <algorithm>

#include "netlist/types.hpp"

namespace rls::analysis {

using netlist::GateType;
using netlist::SignalId;

namespace {

/// Ternary evaluation of one combinational gate.
std::int8_t ternary_eval(const sim::CompiledCircuit& cc, SignalId id,
                         const std::vector<std::int8_t>& v) {
  const auto fi = cc.fanin(id);
  switch (cc.type(id)) {
    case GateType::kBuf:
      return v[fi[0]];
    case GateType::kNot:
      return v[fi[0]] == kX ? kX : static_cast<std::int8_t>(1 - v[fi[0]]);
    case GateType::kAnd:
    case GateType::kNand: {
      std::int8_t out = 1;
      for (SignalId in : fi) {
        if (v[in] == 0) {
          out = 0;
          break;
        }
        if (v[in] == kX) out = kX;
      }
      if (cc.type(id) == GateType::kAnd || out == kX) return out;
      return static_cast<std::int8_t>(1 - out);
    }
    case GateType::kOr:
    case GateType::kNor: {
      std::int8_t out = 0;
      for (SignalId in : fi) {
        if (v[in] == 1) {
          out = 1;
          break;
        }
        if (v[in] == kX) out = kX;
      }
      if (cc.type(id) == GateType::kOr || out == kX) return out;
      return static_cast<std::int8_t>(1 - out);
    }
    case GateType::kXor:
    case GateType::kXnor: {
      std::int8_t out = 0;
      for (SignalId in : fi) {
        if (v[in] == kX) return kX;
        out = static_cast<std::int8_t>(out ^ v[in]);
      }
      if (cc.type(id) == GateType::kXnor) {
        out = static_cast<std::int8_t>(1 - out);
      }
      return out;
    }
    default:
      return kX;
  }
}

/// SCOAP controllability of one combinational gate from fanin measures.
void scoap_cc(const sim::CompiledCircuit& cc, SignalId id,
              const std::vector<std::uint32_t>& cc0,
              const std::vector<std::uint32_t>& cc1, std::uint32_t* out0,
              std::uint32_t* out1) {
  const auto fi = cc.fanin(id);
  const auto sum_all = [&](const std::vector<std::uint32_t>& m) {
    std::uint32_t s = 0;
    for (SignalId in : fi) s = scoap_add(s, m[in]);
    return s;
  };
  const auto min_all = [&](const std::vector<std::uint32_t>& m) {
    std::uint32_t s = kScoapInf;
    for (SignalId in : fi) s = std::min(s, m[in]);
    return s;
  };
  std::uint32_t v0 = kScoapInf;
  std::uint32_t v1 = kScoapInf;
  switch (cc.type(id)) {
    case GateType::kBuf:
      v0 = cc0[fi[0]];
      v1 = cc1[fi[0]];
      break;
    case GateType::kNot:
      v0 = cc1[fi[0]];
      v1 = cc0[fi[0]];
      break;
    case GateType::kAnd:
      v0 = min_all(cc0);
      v1 = sum_all(cc1);
      break;
    case GateType::kNand:
      v0 = sum_all(cc1);
      v1 = min_all(cc0);
      break;
    case GateType::kOr:
      v0 = sum_all(cc0);
      v1 = min_all(cc1);
      break;
    case GateType::kNor:
      v0 = min_all(cc1);
      v1 = sum_all(cc0);
      break;
    case GateType::kXor:
    case GateType::kXnor: {
      // Pairwise fold: cost of producing parity 0 / 1 over the prefix.
      std::uint32_t p0 = cc0[fi[0]];
      std::uint32_t p1 = cc1[fi[0]];
      for (std::size_t k = 1; k < fi.size(); ++k) {
        const std::uint32_t a0 = cc0[fi[k]];
        const std::uint32_t a1 = cc1[fi[k]];
        const std::uint32_t n0 =
            std::min(scoap_add(p0, a0), scoap_add(p1, a1));
        const std::uint32_t n1 =
            std::min(scoap_add(p0, a1), scoap_add(p1, a0));
        p0 = n0;
        p1 = n1;
      }
      v0 = p0;
      v1 = p1;
      if (cc.type(id) == GateType::kXnor) std::swap(v0, v1);
      break;
    }
    default:
      break;
  }
  *out0 = scoap_add(v0, 1);
  *out1 = scoap_add(v1, 1);
}

/// SCOAP cost of holding every side input of `id` (all pins != pin) at a
/// non-controlling value, kScoapInf when impossible.
std::uint32_t side_hold_cost(const sim::CompiledCircuit& cc, SignalId id,
                             std::size_t pin,
                             const std::vector<std::uint32_t>& cc0,
                             const std::vector<std::uint32_t>& cc1) {
  const auto fi = cc.fanin(id);
  std::uint32_t s = 0;
  switch (cc.type(id)) {
    case GateType::kBuf:
    case GateType::kNot:
      return 0;
    case GateType::kAnd:
    case GateType::kNand:
      for (std::size_t k = 0; k < fi.size(); ++k) {
        if (k != pin) s = scoap_add(s, cc1[fi[k]]);
      }
      return s;
    case GateType::kOr:
    case GateType::kNor:
      for (std::size_t k = 0; k < fi.size(); ++k) {
        if (k != pin) s = scoap_add(s, cc0[fi[k]]);
      }
      return s;
    case GateType::kXor:
    case GateType::kXnor:
      // Parity propagates any single change once the side inputs hold any
      // definite value: cheapest of 0/1 per side pin.
      for (std::size_t k = 0; k < fi.size(); ++k) {
        if (k != pin) s = scoap_add(s, std::min(cc0[fi[k]], cc1[fi[k]]));
      }
      return s;
    default:
      return kScoapInf;
  }
}

/// Per-fault propagation scratch, reused across classify calls through
/// thread-local storage (analysis is single-threaded per circuit, but
/// distinct circuits on distinct threads must not share buffers).
struct Scratch {
  std::vector<std::uint32_t> stamp;   // BFS visited marks
  std::vector<std::uint32_t> cone;    // cone membership marks
  std::vector<SignalId> queue;
  std::uint32_t epoch = 0;
};

Scratch& scratch_for(std::size_t n) {
  thread_local Scratch s;
  if (s.stamp.size() < n) {
    s.stamp.assign(n, 0);
    s.cone.assign(n, 0);
    s.epoch = 0;
  }
  ++s.epoch;
  return s;
}

/// Marks the combinational fanout cone of `entry` (entry itself plus every
/// comb gate reachable through fanout edges; stops at flip-flops) in
/// sc.cone with the current epoch.
void mark_cone(const sim::CompiledCircuit& cc, SignalId entry, Scratch& sc) {
  if (cc.has_cones()) {
    for (SignalId s : cc.cone(entry)) sc.cone[s] = sc.epoch;
    return;
  }
  sc.queue.clear();
  sc.queue.push_back(entry);
  sc.cone[entry] = sc.epoch;
  for (std::size_t head = 0; head < sc.queue.size(); ++head) {
    const SignalId s = sc.queue[head];
    if (s != entry && cc.type(s) == GateType::kDff) continue;
    for (SignalId g : cc.fanout(s)) {
      if (sc.cone[g] != sc.epoch) {
        sc.cone[g] = sc.epoch;
        sc.queue.push_back(g);
      }
    }
  }
}

/// True when gate `g` cannot pass any difference of fault `f`: some fanin
/// pin (excluding `skip_pin` when g is the fault's own gate) is ternary-
/// constant at g's controlling value and lies outside the fault's cone.
bool gate_dead(const StaReport& r, SignalId g, int skip_pin,
               const Scratch& sc) {
  for (std::uint32_t k = r.blocking_off[g]; k < r.blocking_off[g + 1]; ++k) {
    if (skip_pin >= 0 &&
        r.blocking_pin[k] == static_cast<std::uint32_t>(skip_pin)) {
      continue;
    }
    if (sc.cone[r.blocking_net[k]] != sc.epoch) return true;
  }
  return false;
}

/// Per-fault propagation BFS from `entry` (a signal whose value differs
/// between the fault-free and faulty machine). Returns true when a
/// difference can reach a PO or a flip-flop (whose captured state is
/// scanned out). `entry_skip_pin` suppresses the blocking candidate at
/// the faulty pin itself when the entry is the fault's gate output.
bool difference_reaches_observation(const StaReport& r,
                                    const sim::CompiledCircuit& cc,
                                    SignalId entry, Scratch& sc) {
  const netlist::Netlist& nl = cc.nl();
  if (nl.is_primary_output(entry)) return true;
  if (cc.type(entry) == GateType::kDff) return true;
  sc.queue.clear();
  sc.queue.push_back(entry);
  sc.stamp[entry] = sc.epoch;
  for (std::size_t head = 0; head < sc.queue.size(); ++head) {
    const SignalId s = sc.queue[head];
    for (SignalId g : cc.fanout(s)) {
      if (sc.stamp[g] == sc.epoch) continue;
      if (cc.type(g) == GateType::kDff) return true;  // captured + scanned out
      if (gate_dead(r, g, /*skip_pin=*/-1, sc)) continue;
      sc.stamp[g] = sc.epoch;
      if (nl.is_primary_output(g)) return true;
      sc.queue.push_back(g);
    }
  }
  return false;
}

}  // namespace

const char* untestable_reason_name(UntestableReason r) noexcept {
  switch (r) {
    case UntestableReason::kTestable:
      return "testable";
    case UntestableReason::kUnexcitable:
      return "unexcitable";
    case UntestableReason::kUnobservable:
      return "unobservable";
  }
  return "?";
}

StaReport analyze(const sim::CompiledCircuit& cc) {
  const std::size_t n = cc.num_signals();
  const netlist::Netlist& nl = cc.nl();
  StaReport r;
  r.value.assign(n, kX);
  for (SignalId id = 0; id < n; ++id) {
    if (cc.type(id) == GateType::kConst0) r.value[id] = 0;
    if (cc.type(id) == GateType::kConst1) r.value[id] = 1;
  }

  // ---- pass 1: ternary fixpoint over the sequential loop --------------
  // Under full scan a flip-flop's next value stays X (any state can be
  // scanned in), so the loop stabilizes after one sweep; the fixpoint
  // structure is kept for a future non-scan state model.
  bool changed = true;
  while (changed) {
    changed = false;
    ++r.fixpoint_iters;
    for (SignalId id : cc.order()) {
      const std::int8_t v = ternary_eval(cc, id, r.value);
      if (v != r.value[id]) {
        r.value[id] = v;
        changed = true;
      }
    }
    // Full-scan state update: Q stays X. Nothing to do, so the sweep
    // above can only change values once.
  }
  for (SignalId id = 0; id < n; ++id) {
    if (r.value[id] == kX) continue;
    ++r.num_const_nets;
    if (cc.type(id) != GateType::kConst0 && cc.type(id) != GateType::kConst1) {
      ++r.num_derived_const;
    }
  }

  // ---- pass 2: SCOAP ---------------------------------------------------
  r.cc0.assign(n, kScoapInf);
  r.cc1.assign(n, kScoapInf);
  r.co.assign(n, kScoapInf);
  for (SignalId pi : cc.inputs()) r.cc0[pi] = r.cc1[pi] = 1;
  for (SignalId ff : cc.flip_flops()) r.cc0[ff] = r.cc1[ff] = 1;  // scan load
  for (SignalId id = 0; id < n; ++id) {
    if (cc.type(id) == GateType::kConst0) {
      r.cc0[id] = 0;
      r.cc1[id] = kScoapInf;
    } else if (cc.type(id) == GateType::kConst1) {
      r.cc0[id] = kScoapInf;
      r.cc1[id] = 0;
    }
  }
  for (SignalId id : cc.order()) {
    scoap_cc(cc, id, r.cc0, r.cc1, &r.cc0[id], &r.cc1[id]);
  }

  // CO: observation points first, then reverse levelized order. A scan
  // cell observes both its D net (capture + shift out) and its Q net (the
  // state itself shifts out) at unit cost.
  for (SignalId po : nl.primary_outputs()) r.co[po] = 0;
  for (SignalId ff : cc.flip_flops()) {
    r.co[cc.fanin(ff)[0]] = std::min(r.co[cc.fanin(ff)[0]], 1u);
    r.co[ff] = std::min(r.co[ff], 1u);
  }
  const auto relax_through_consumers = [&](SignalId id) {
    std::uint32_t best = r.co[id];
    for (SignalId g : cc.fanout(id)) {
      if (!netlist::is_combinational(cc.type(g))) continue;  // DFF seeded above
      const auto fi = cc.fanin(g);
      for (std::size_t pin = 0; pin < fi.size(); ++pin) {
        if (fi[pin] != id) continue;
        const std::uint32_t through = scoap_add(
            scoap_add(r.co[g], side_hold_cost(cc, g, pin, r.cc0, r.cc1)), 1);
        best = std::min(best, through);
      }
    }
    r.co[id] = best;
  };
  const auto order = cc.order();
  for (std::size_t k = order.size(); k-- > 0;) {
    relax_through_consumers(order[k]);
  }
  for (SignalId id = 0; id < n; ++id) {
    if (!netlist::is_combinational(cc.type(id))) relax_through_consumers(id);
  }
  for (SignalId id = 0; id < n; ++id) {
    if (r.co[id] == kScoapInf) ++r.num_co_inf;
  }

  // ---- pass 3 precomputation: blocking candidates + optimistic closure --
  r.blocking_off.assign(n + 1, 0);
  for (SignalId id : cc.order()) {
    const int ctl = netlist::controlling_value(cc.type(id));
    if (ctl < 0) continue;
    const auto fi = cc.fanin(id);
    for (std::size_t pin = 0; pin < fi.size(); ++pin) {
      if (r.value[fi[pin]] == static_cast<std::int8_t>(ctl)) {
        ++r.blocking_off[id + 1];
      }
    }
  }
  for (SignalId id = 0; id < n; ++id) {
    r.blocking_off[id + 1] += r.blocking_off[id];
  }
  r.blocking_pin.assign(r.blocking_off[n], 0);
  r.blocking_net.assign(r.blocking_off[n], 0);
  {
    std::vector<std::uint32_t> cursor(r.blocking_off.begin(),
                                      r.blocking_off.end() - 1);
    for (SignalId id : cc.order()) {
      const int ctl = netlist::controlling_value(cc.type(id));
      if (ctl < 0) continue;
      const auto fi = cc.fanin(id);
      for (std::size_t pin = 0; pin < fi.size(); ++pin) {
        if (r.value[fi[pin]] == static_cast<std::int8_t>(ctl)) {
          r.blocking_pin[cursor[id]] = static_cast<std::uint32_t>(pin);
          r.blocking_net[cursor[id]] = fi[pin];
          ++cursor[id];
        }
      }
    }
  }
  r.no_blocking = r.blocking_pin.empty();

  // Optimistic backward closure: observable[s] = a PO or flip-flop D pin
  // is structurally reachable from s (ignoring dead gates). When no
  // blocking candidates exist this closure is exact.
  r.observable.assign(n, 0);
  std::vector<SignalId> queue;
  for (SignalId po : nl.primary_outputs()) {
    if (!r.observable[po]) {
      r.observable[po] = 1;
      queue.push_back(po);
    }
  }
  for (SignalId ff : cc.flip_flops()) {
    // Q is observed (state shifts out); D's net is seeded below through
    // the reverse edge from the DFF consumer.
    if (!r.observable[ff]) {
      r.observable[ff] = 1;
      queue.push_back(ff);
    }
  }
  // Reverse edges: a signal is observable if any consumer gate is
  // observable (or is a DFF, whose capture is observed).
  // Build once: for each net, walk consumers directly per pop.
  std::vector<std::uint8_t> seen = r.observable;
  // A consumer-driven backward pass needs reverse adjacency; fanin() of an
  // observable gate gives exactly that.
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const SignalId g = queue[head];
    for (SignalId in : cc.fanin(g)) {
      if (!seen[in]) {
        seen[in] = 1;
        queue.push_back(in);
      }
    }
  }
  r.observable = std::move(seen);
  return r;
}

UntestableReason classify_fault(const StaReport& r,
                                const sim::CompiledCircuit& cc,
                                const fault::Fault& f) {
  const GateType t = cc.type(f.gate);
  // Flip-flop Q-line faults corrupt the scan chain itself, which is read
  // out every test: always excitable (Q is X) and always observed.
  if (f.pin < 0 && t == GateType::kDff) return UntestableReason::kTestable;

  // Excitation: the faulted line must be able to carry the opposite value.
  const SignalId line =
      f.pin < 0 ? f.gate : cc.fanin(f.gate)[static_cast<std::size_t>(f.pin)];
  if (r.value[line] == static_cast<std::int8_t>(f.stuck)) {
    return UntestableReason::kUnexcitable;
  }

  // A flip-flop D-pin fault that is excitable is captured and scanned out.
  if (t == GateType::kDff) return UntestableReason::kTestable;

  // Observation: the difference first appears at the fault's gate output
  // (for a pin fault the gate must also pass it: its blocking candidates
  // at other pins apply; the faulty pin itself never blocks its own
  // fault).
  Scratch& sc = scratch_for(cc.num_signals());
  if (f.pin < 0) {
    if (!r.observable[f.gate]) return UntestableReason::kUnobservable;
    if (r.no_blocking) return UntestableReason::kTestable;
    mark_cone(cc, f.gate, sc);
    return difference_reaches_observation(r, cc, f.gate, sc)
               ? UntestableReason::kTestable
               : UntestableReason::kUnobservable;
  }

  if (!r.observable[f.gate]) return UntestableReason::kUnobservable;
  if (r.no_blocking) return UntestableReason::kTestable;
  // Pin fault: the divergence is confined to gate g's reading of pin p.
  // Its cone is g's output cone; g itself passes the difference only when
  // no *other* pin holds a fault-independent controlling constant.
  mark_cone(cc, f.gate, sc);
  if (gate_dead(r, f.gate, /*skip_pin=*/f.pin, sc)) {
    return UntestableReason::kUnobservable;
  }
  return difference_reaches_observation(r, cc, f.gate, sc)
             ? UntestableReason::kTestable
             : UntestableReason::kUnobservable;
}

std::vector<std::uint8_t> StaFaultClasses::untestable_mask() const {
  std::vector<std::uint8_t> mask(reason.size(), 0);
  for (std::size_t i = 0; i < reason.size(); ++i) {
    mask[i] = reason[i] != UntestableReason::kTestable ? 1 : 0;
  }
  return mask;
}

StaFaultClasses classify_faults(const StaReport& r,
                                const sim::CompiledCircuit& cc,
                                const std::vector<fault::Fault>& faults) {
  StaFaultClasses out;
  out.reason.resize(faults.size());
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const UntestableReason why = classify_fault(r, cc, faults[i]);
    out.reason[i] = why;
    if (why == UntestableReason::kUnexcitable) {
      ++out.num_unexcitable;
      ++out.num_untestable;
    } else if (why == UntestableReason::kUnobservable) {
      ++out.num_unobservable;
      ++out.num_untestable;
    }
  }
  return out;
}

obs::TraceEvent sta_trace_event(const StaReport& r,
                                const StaFaultClasses& cls,
                                std::size_t num_faults) {
  obs::TraceEvent ev("sta");
  ev.u64("nets", r.value.size())
      .u64("const_nets", r.num_const_nets)
      .u64("derived_const", r.num_derived_const)
      .u64("co_inf", r.num_co_inf)
      .u64("fixpoint_iters", r.fixpoint_iters)
      .u64("faults", num_faults)
      .u64("untestable", cls.num_untestable)
      .u64("unexcitable", cls.num_unexcitable)
      .u64("unobservable", cls.num_unobservable);
  return ev;
}

void add_sta_counters(obs::CounterRegistry& counters, const StaReport& r,
                      const StaFaultClasses& cls) {
  counters.add("analysis.sta.const_nets", r.num_const_nets);
  counters.add("analysis.sta.derived_const", r.num_derived_const);
  counters.add("analysis.sta.co_inf", r.num_co_inf);
  counters.add("analysis.sta.fixpoint_iters", r.fixpoint_iters);
  counters.add("analysis.sta.untestable", cls.num_untestable);
  counters.add("analysis.sta.unexcitable", cls.num_unexcitable);
  counters.add("analysis.sta.unobservable", cls.num_unobservable);
}

bool sta_self_check(const StaReport& r, const sim::CompiledCircuit& cc,
                    const std::vector<fault::Fault>& faults,
                    std::string* why) {
  const auto fail = [&](std::string msg) {
    if (why != nullptr) *why = std::move(msg);
    return false;
  };
  for (SignalId id = 0; id < cc.num_signals(); ++id) {
    if (r.value[id] == 0 && r.cc1[id] != kScoapInf) {
      return fail("net " + cc.nl().signal_name(id) +
                  ": ternary-constant 0 but cc1 is finite");
    }
    if (r.value[id] == 1 && r.cc0[id] != kScoapInf) {
      return fail("net " + cc.nl().signal_name(id) +
                  ": ternary-constant 1 but cc0 is finite");
    }
  }
  for (const fault::Fault& f : faults) {
    const UntestableReason why_f = classify_fault(r, cc, f);
    const SignalId line =
        f.pin < 0 ? f.gate : cc.fanin(f.gate)[static_cast<std::size_t>(f.pin)];
    if (f.pin < 0 && cc.type(f.gate) == GateType::kDff &&
        why_f != UntestableReason::kTestable) {
      return fail("flip-flop Q fault " + fault::fault_name(cc.nl(), f) +
                  " classified untestable");
    }
    if (why_f == UntestableReason::kUnexcitable &&
        r.value[line] != static_cast<std::int8_t>(f.stuck)) {
      return fail("fault " + fault::fault_name(cc.nl(), f) +
                  " unexcitable but line is not constant at the stuck value");
    }
    if (why_f == UntestableReason::kUnobservable && f.pin < 0 &&
        r.co[f.gate] != kScoapInf) {
      return fail("fault " + fault::fault_name(cc.nl(), f) +
                  " unobservable but co is finite");
    }
  }
  return true;
}

std::string analyze_jsonl(const sim::CompiledCircuit& cc,
                          const std::vector<fault::Fault>& faults,
                          const AnalyzeJsonOptions& opt) {
  const StaReport r = analyze(cc);
  const StaFaultClasses cls = classify_faults(r, cc, faults);
  std::string out;
  {
    obs::TraceEvent ev = sta_trace_event(r, cls, faults.size());
    // Circuit name first so each stream is self-identifying.
    ev.fields.insert(ev.fields.begin(),
                     std::make_pair(std::string("circuit"),
                                    obs::Value{cc.nl().name()}));
    out += obs::to_jsonl(ev);
    out.push_back('\n');
  }
  if (opt.scoap) {
    for (SignalId id = 0; id < cc.num_signals(); ++id) {
      obs::TraceEvent ev("sta_net");
      ev.str("net", cc.nl().signal_name(id));
      const std::int8_t v = r.value[id];
      ev.i64("value", v);
      // kScoapInf renders as -1: JSONL consumers get a typed sentinel
      // instead of a 32-bit magic number.
      const auto scoap_field = [&](const char* key, std::uint32_t m) {
        ev.i64(key, m == kScoapInf ? -1 : static_cast<std::int64_t>(m));
      };
      scoap_field("cc0", r.cc0[id]);
      scoap_field("cc1", r.cc1[id]);
      scoap_field("co", r.co[id]);
      out += obs::to_jsonl(ev);
      out.push_back('\n');
    }
  }
  if (opt.untestable) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (cls.reason[i] == UntestableReason::kTestable) continue;
      obs::TraceEvent ev("sta_fault");
      ev.str("fault", fault::fault_name(cc.nl(), faults[i]))
          .str("reason", untestable_reason_name(cls.reason[i]));
      out += obs::to_jsonl(ev);
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace rls::analysis
