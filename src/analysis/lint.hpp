// rls::lint — circuit design-rule and random-pattern-resistance analyzer.
//
// A lint run executes a registry of checks against a circuit and returns a
// deterministic list of diagnostics. Each diagnostic carries a stable code
// (the contract CI greps and golden tests pin), a severity, and an anchor
// (gate/net id + name) so tooling can jump to the offending object.
//
// Check catalog (codes are append-only; never renumber):
//   RLS-E001  combinational cycle (Tarjan SCC, with a concrete cycle path)
//   RLS-E002  undriven net: referenced but never assigned     (source-level)
//   RLS-E003  multiply-driven net: assigned more than once    (source-level)
//   RLS-E004  circuit has no primary outputs
//   RLS-E005  scan chain references an out-of-range flip-flop position
//   RLS-E006  flip-flop position appears twice in the scan configuration
//   RLS-E007  flip-flop in no chain and not declared unscanned (N_SV gap)
//   RLS-E010  unparseable .bench line                          (source-level)
//   RLS-E011  unknown gate type                                (source-level)
//   RLS-W101  dangling signal: drives nothing and is not an output
//   RLS-W102  gate unreachable from any input or state variable
//   RLS-W103  unobservable cone: has fanout but no path to any PO / DFF D
//   RLS-W104  dangling scan variable: flip-flop state is never read
//   RLS-W105  constant scan variable: flip-flop D is tied to a constant
//   RLS-W106  X-tainted output: PO depends on an undriven net (source-level)
//   RLS-I201  partial scan: flip-flops deliberately left unscanned
//   RLS-I300  resistance summary: predicted escape count for the budget
//   RLS-I301  random-pattern-resistant fault (COP escape above threshold)
//
// Severities map to CI exit codes in the `rls lint` subcommand: errors
// exit 1, warnings (with no errors) exit 2, info-only runs exit 0.
//
// Two front doors:
//   * run_lint(netlist)          — structural + resistance checks on a
//     built netlist (multiply-driven / undriven nets cannot exist here:
//     Netlist construction rejects them);
//   * run_lint_source(text)      — tolerant `.bench` scan first (catches
//     what the builder rejects), then the netlist checks when the text
//     still builds.
//
// netlist/validate.hpp survives as a thin compatibility adapter over
// run_lint (see validate_compat.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/resistance.hpp"
#include "netlist/netlist.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "scan/chain.hpp"

namespace rls::analysis {

enum class Severity : std::uint8_t { kError, kWarning, kInfo };

/// Canonical lower-case name: "error", "warning", "info".
std::string_view to_string(Severity s) noexcept;

/// One finding. Ordering (operator<) is the deterministic report order:
/// by code, then anchor id, then object name, then message — so two runs
/// over the same circuit always produce byte-identical reports.
struct Diagnostic {
  std::string code;     ///< stable "RLS-Exxx" / "RLS-Wxxx" / "RLS-Ixxx"
  Severity severity = Severity::kError;
  netlist::SignalId signal = netlist::kNoSignal;  ///< anchor; kNoSignal = circuit-level
  std::string object;   ///< anchor name (net/gate) or "" for circuit-level
  std::string message;  ///< human-readable description
  /// Optional witness path (the E001 cycle: g0 -> g1 -> ... -> g0).
  std::vector<netlist::SignalId> path;

  friend bool operator<(const Diagnostic& a, const Diagnostic& b) {
    if (a.code != b.code) return a.code < b.code;
    if (a.signal != b.signal) return a.signal < b.signal;
    if (a.object != b.object) return a.object < b.object;
    return a.message < b.message;
  }
};

struct LintOptions {
  /// Scan configuration to verify (nullopt = single full-scan chain over
  /// all N_SV flip-flops, which is trivially consistent).
  std::optional<scan::ChainConfig> chain;
  /// Run the COP-based random-pattern-resistance pass (needs an acyclic
  /// core; skipped automatically when structural errors are present).
  bool resistance = true;
  /// TS_0 budget the resistance pass predicts escapes for.
  PatternBudget budget;
  /// Flag faults whose predicted escape probability is at least this.
  double escape_threshold = 0.5;
  /// Cap on individual RLS-I301 diagnostics (the I300 summary always
  /// carries the full count).
  std::size_t max_resistant_report = 20;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< sorted (see Diagnostic::operator<)
  /// "lint.*" totals: lint.checks, lint.diags, lint.errors, lint.warnings,
  /// lint.infos, lint.faults_analyzed, lint.resistant_faults.
  obs::CounterRegistry counters;
  /// Full resistance report when the pass ran (empty otherwise).
  ResistanceReport resistance;

  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] bool has_errors() const noexcept {
    return count(Severity::kError) > 0;
  }
  [[nodiscard]] bool has_warnings() const noexcept {
    return count(Severity::kWarning) > 0;
  }
  /// CI exit code: 1 with errors, 2 with warnings only, 0 otherwise.
  [[nodiscard]] int exit_code() const noexcept;
};

/// A named structural check over a built netlist. The registry is the
/// extension point: every check appends its diagnostics independently and
/// the framework sorts the union.
struct Check {
  std::string_view name;  ///< stable check name ("comb-cycle", ...)
  void (*run)(const netlist::Netlist& nl, const LintOptions& opts,
              std::vector<Diagnostic>& out);
};

/// The built-in structural checks, in registration order.
std::span<const Check> structural_checks();

/// Lints a finalized netlist: every structural check, then (if the core is
/// acyclic and opts.resistance) the COP resistance pass.
LintResult run_lint(const netlist::Netlist& nl, const LintOptions& opts = {});

/// Lints `.bench` source text: tolerant scan (RLS-E010/E011), net rules
/// that only exist pre-construction (RLS-E002/E003), X-source tracing to
/// primary outputs (RLS-W106), then — when the text builds — everything
/// run_lint checks on the resulting netlist.
LintResult run_lint_source(std::string_view bench_text, std::string name,
                           const LintOptions& opts = {});

/// "error[RLS-E001] object: message" (one line, no trailing newline).
std::string format_text(const Diagnostic& d);

/// TraceEvent form, one "lint" event per diagnostic:
///   {"ev":"lint","code":...,"sev":...,"signal":...,"object":...,"msg":...}
/// (signal omitted when the diagnostic is circuit-level).
obs::TraceEvent to_trace_event(const Diagnostic& d);

/// Emits every diagnostic plus a terminal "lint_summary" event carrying
/// the severity totals and the lint.* counters.
void emit(const LintResult& result, obs::TraceSink& sink);

}  // namespace rls::analysis
