#!/usr/bin/env sh
# Runs the perf microbenchmarks with JSON output and writes the result to
# BENCH_PR7.json at the repository root (override with -o). The BM_ObsOverhead
# benchmark exports the engine's obs counters (obs.fsim.* per sweep) as
# benchmark user counters, so they land in the JSON artifact alongside the
# timings — compare the s5378_off/_on pair to check the <2% overhead contract.
# BM_ComboSweep/s420_w{1,2,4,8} is the speculative combo-sweep scaling curve
# (compare w1 vs w4 real_time for the PR-3 speedup headline).
# BM_StoreRoundTrip is one full artifact encode/put/get/decode cycle, and
# BM_CampaignCached/s298_{cold,warm} is the same campaign against an empty
# versus a populated artifact store — the cold/warm ratio is the PR-5
# caching headline. BM_PackedFsim and the *_packed rows of
# BM_SeqFaultSimEngines measure the bit-parallel PPSFP engine: compare
# s5378_packed gate_evals_per_sweep against s5378_conediff for the PR-6
# (>=5x) reduction headline. BM_ServeThroughput drives submit_batch
# through svc::CampaignService (cold / warm store / coalesced duplicates):
# compare cold vs warm real_time for the store payoff and the coalesced
# rows' requests/s + svc.coalesced_per_batch for the single-flight dedup
# headline (PR-7; generate with `-f ServeThroughput -o BENCH_PR7.json`).
# BM_StaPrune/s420t_{unpruned,pruned} is one bounded Procedure 2 pass over
# the full collapsed universe with and without the sta untestable mask:
# `detected` must match exactly while gate_evals_per_run drops (PR-9;
# generate with `-f StaPrune -o BENCH_PR9.json`).
# BM_NetThroughput is the BM_ServeThroughput workload pushed through the
# TCP loopback (NetClient -> NetServer -> CampaignService): compare
# against the matching ServeThroughput row for the transport tax, cold
# vs warm for the store payoff over the wire, and the coalesced row's
# requests/s for cross-connection single-flight dedup (PR-10; generate
# with `-f NetThroughput -o BENCH_PR10.json`).
#
# Usage:
#   tools/bench_to_json.sh [-b BUILD_DIR] [-o OUTPUT] [-f FILTER] [-m MIN_TIME]
#
# Examples:
#   tools/bench_to_json.sh                          # full suite
#   tools/bench_to_json.sh -f SeqFaultSimEngines    # engine head-to-head only
#   tools/bench_to_json.sh -f ObsOverhead           # obs overhead + counters
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
output="$repo_root/BENCH_PR7.json"
filter=""
min_time="0.2"

while getopts "b:o:f:m:h" opt; do
  case "$opt" in
    b) build_dir=$OPTARG ;;
    o) output=$OPTARG ;;
    f) filter=$OPTARG ;;
    m) min_time=$OPTARG ;;
    h | *)
      sed -n '2,9p' "$0"
      exit 0
      ;;
  esac
done

bench="$build_dir/bench/bench_perf"
if [ ! -x "$bench" ]; then
  echo "building bench_perf in $build_dir ..." >&2
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target bench_perf -j >/dev/null
fi

set -- --benchmark_format=json --benchmark_out="$output" \
  --benchmark_out_format=json --benchmark_min_time="$min_time"
if [ -n "$filter" ]; then
  set -- "$@" --benchmark_filter="$filter"
fi

"$bench" "$@" >/dev/null
if [ ! -s "$output" ]; then
  echo "error: no benchmarks matched — $output is empty" >&2
  rm -f "$output"
  exit 1
fi
echo "wrote $output" >&2
