// rls — command-line front end to the Random Limited-Scan library.
//
//   rls list                          known benchmark circuits
//   rls stats   <circuit|file.bench>  interface / size / depth summary
//   rls bench   <circuit>             dump the netlist in .bench format
//   rls faults  <circuit>             fault universe + detectability report
//   rls cop     <circuit> [n]         the n hardest faults by COP estimate
//   rls run     <circuit> [options]   Procedure 2 (one Table-6 style row)
//   rls tables  <circuit>             Table-5 style (L_A,L_B,N) ranking
//
// `<circuit>` is a registry name (s27, s208, ..., b11) or a path to an
// ISCAS-89 .bench file.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/cop.hpp"
#include "core/campaign.hpp"
#include "fault/collapse.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "netlist/validate.hpp"
#include "report/format.hpp"
#include "scan/cost.hpp"

namespace {

using namespace rls;

netlist::Netlist load(const std::string& which) {
  if (which.find(".bench") != std::string::npos ||
      which.find('/') != std::string::npos) {
    return netlist::load_bench_file(which);
  }
  return gen::make_circuit(which);
}

int cmd_list() {
  for (const std::string& name : gen::known_circuits()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_stats(const std::string& which) {
  const netlist::Netlist nl = load(which);
  const netlist::CircuitStats s = netlist::compute_stats(nl);
  std::printf("circuit: %s\n%s\n", nl.name().c_str(),
              netlist::to_string(s).c_str());
  const auto violations = netlist::validate(nl);
  std::printf("design-rule violations: %zu\n", violations.size());
  for (const auto& v : violations) {
    std::printf("  %s\n", v.message.c_str());
  }
  return violations.empty() ? 0 : 1;
}

int cmd_bench(const std::string& which) {
  std::printf("%s", netlist::write_bench(load(which)).c_str());
  return 0;
}

int cmd_faults(const std::string& which) {
  const core::Workbench wb(load(which));
  const auto& det = wb.detectability();
  std::printf("circuit: %s\n", wb.name().c_str());
  std::printf("collapsed stuck-at faults: %zu\n", wb.universe().size());
  std::printf("  detectable:  %zu (%zu by random sim, %zu by PODEM)\n",
              det.num_detectable, det.detected_by_random, det.detected_by_atpg);
  std::printf("  untestable:  %zu (proven redundant)\n", det.num_untestable);
  std::printf("  aborted:     %zu (PODEM backtrack limit)\n", det.num_aborted);
  return 0;
}

int cmd_cop(const std::string& which, std::size_t top) {
  const netlist::Netlist nl = load(which);
  const sim::CompiledCircuit cc(nl);
  const analysis::CopResult cop = analysis::compute_cop(cc);
  const auto faults = fault::collapsed_universe(nl);
  std::vector<std::pair<double, const fault::Fault*>> ranked;
  for (const auto& f : faults) {
    ranked.emplace_back(analysis::detection_probability(cop, cc, f), &f);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  report::Table table({"fault", "det prob", "expected patterns"});
  for (std::size_t k = 0; k < top && k < ranked.size(); ++k) {
    table.add_row(
        {fault_name(nl, *ranked[k].second),
         report::format_fixed(ranked[k].first, 6),
         report::format_cycles(static_cast<std::uint64_t>(std::min(
             analysis::expected_pattern_count(ranked[k].first), 1e18)))});
  }
  std::printf("%zu hardest faults by COP estimate:\n%s", top,
              table.to_string().c_str());
  return 0;
}

int cmd_tables(const std::string& which) {
  const netlist::Netlist nl = load(which);
  const auto combos = core::enumerate_default_combos(nl.num_state_vars());
  report::Table table({"rank", "LA", "LB", "N", "Ncyc0"});
  for (std::size_t k = 0; k < 10 && k < combos.size(); ++k) {
    table.add_row({std::to_string(k + 1), std::to_string(combos[k].l_a),
                   std::to_string(combos[k].l_b), std::to_string(combos[k].n),
                   std::to_string(combos[k].ncyc0)});
  }
  std::printf("first 10 combinations by Ncyc0 (NSV = %zu):\n%s",
              nl.num_state_vars(), table.to_string().c_str());
  return 0;
}

int cmd_run(const std::string& which, int argc, char** argv) {
  core::Procedure2Options opt;
  core::Workbench wb(load(which));
  std::size_t la = 0, lb = 0, n = 0;
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto num = [&](const char* prefix) -> long {
      return std::strtol(a.c_str() + std::strlen(prefix), nullptr, 10);
    };
    if (a.rfind("--la=", 0) == 0) la = static_cast<std::size_t>(num("--la="));
    if (a.rfind("--lb=", 0) == 0) lb = static_cast<std::size_t>(num("--lb="));
    if (a.rfind("--n=", 0) == 0) n = static_cast<std::size_t>(num("--n="));
    if (a.rfind("--max-iters=", 0) == 0) {
      opt.max_iterations = static_cast<std::uint32_t>(num("--max-iters="));
    }
    if (a == "--d1-desc") opt.d1_order = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  }
  const core::ExperimentRow row =
      (la && lb && n)
          ? core::run_single_combo(wb, core::Combo{la, lb, n, 0}, opt)
          : core::run_first_complete(wb, opt);

  std::printf("circuit %s: LA=%zu LB=%zu N=%zu (Ncyc0=%llu)\n",
              row.circuit.c_str(), row.combo.l_a, row.combo.l_b, row.combo.n,
              static_cast<unsigned long long>(row.combo.ncyc0));
  std::printf("TS_0: %zu / %zu faults, %s cycles\n", row.result.ts0_detected,
              row.target_faults,
              report::format_cycles(row.result.ncyc0).c_str());
  for (const core::AppliedSet& a : row.result.applied) {
    std::printf("  TS(I=%u,D1=%u): +%zu, %s cycles\n", a.iteration, a.d1,
                a.detected, report::format_cycles(a.cycles).c_str());
  }
  std::printf("total: %zu / %zu detected (%s), %s cycles, ls=%.2f\n",
              row.result.total_detected, row.target_faults,
              row.found_complete ? "complete" : "incomplete",
              report::format_cycles(row.result.total_cycles()).c_str(),
              row.result.average_limited_scan_units());
  return row.found_complete ? 0 : 2;
}

int usage() {
  std::fprintf(stderr,
               "usage: rls <list|stats|bench|faults|cop|tables|run> "
               "[circuit] [options]\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (argc < 3) return usage();
    const std::string which = argv[2];
    if (cmd == "stats") return cmd_stats(which);
    if (cmd == "bench") return cmd_bench(which);
    if (cmd == "faults") return cmd_faults(which);
    if (cmd == "cop") {
      const std::size_t top =
          argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 10;
      return cmd_cop(which, top);
    }
    if (cmd == "tables") return cmd_tables(which);
    if (cmd == "run") return cmd_run(which, argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
