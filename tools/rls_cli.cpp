// rls — command-line front end to the Random Limited-Scan library.
//
//   rls list                          known benchmark circuits
//   rls stats   <circuit|file.bench>  interface / size / depth summary
//   rls bench   <circuit>             dump the netlist in .bench format
//   rls faults  <circuit>             fault universe + detectability report
//   rls cop     <circuit> [n]         the n hardest faults by COP estimate
//   rls run     <circuit> [options]   Procedure 2 (one Table-6 style row)
//   rls tables  <circuit>             Table-5 style (L_A,L_B,N) ranking
//   rls lint    <circuit|file.bench>  design-rule + resistance diagnostics
//
// `<circuit>` is a registry name (s27, s208, ..., b11) or a path to an
// ISCAS-89 .bench file. Common flags (uniform across subcommands):
//   --engine=conediff|fullsweep|packed   fault-simulation engine
//   --threads=N                   simulation worker threads (0 = hardware)
//   --seed=S                      base seed (Procedure 1 + detectability)
//   --trace=FILE                  JSONL event stream ("-" = stdout)
//   --progress                    live status lines on stderr
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/cop.hpp"
#include "analysis/lint.hpp"
#include "cli/flags.hpp"
#include "core/campaign.hpp"
#include "core/run_context.hpp"
#include "fault/collapse.hpp"
#include "gen/registry.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "netlist/validate.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "report/format.hpp"
#include "scan/cost.hpp"
#include "store/artifact_store.hpp"
#include "store/checkpoint.hpp"

namespace {

using namespace rls;

netlist::Netlist load(const std::string& which) {
  // Registry names win; anything else must be an existing, readable file.
  if (gen::is_known_circuit(which)) return gen::make_circuit(which);
  if (!std::ifstream(which).good()) {
    throw std::runtime_error(
        "'" + which +
        "' is neither a known circuit (see `rls list`) nor a readable "
        ".bench file");
  }
  return netlist::load_bench_file(which);
}

/// Flags shared by every circuit-taking subcommand, plus the observability
/// wiring they configure. Register with `add_to`, then `configure` a
/// RunContext after parsing (the sinks outlive the returned object).
struct CommonFlags {
  std::string engine = "conediff";
  std::uint64_t threads = 0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  std::string trace;
  bool progress = false;

  std::unique_ptr<obs::JsonlSink> sink;
  std::unique_ptr<obs::StreamProgress> reporter;

  void add_to(cli::FlagParser& fp) {
    fp.add_string("engine", &engine,
                  "conediff (default), fullsweep, or packed");
    fp.add_uint("threads", &threads, "sim worker threads (0 = hardware)");
    fp.add_string("seed", &seed_text, "base seed (decimal)");
    fp.add_string("trace", &trace, "write JSONL event trace to FILE");
    fp.add_bool("progress", &progress, "live status lines on stderr");
  }

  void configure(core::RunContext& ctx) {
    if (!seed_text.empty()) {
      ctx.options.p2.base_seed = std::stoull(seed_text);
      ctx.options.detect.seed = std::stoull(seed_text);
    }
    if (const std::optional<fault::Engine> e = fault::parse_engine(engine)) {
      ctx.options.p2.engine = *e;
    } else {
      throw cli::FlagError("--engine expects one of " +
                           std::string(fault::engine_choices()) + ", got '" +
                           engine + "'");
    }
    ctx.options.p2.sim_threads = static_cast<unsigned>(threads);
    if (!trace.empty()) {
      sink = trace == "-" ? std::make_unique<obs::JsonlSink>(stdout)
                          : std::make_unique<obs::JsonlSink>(trace);
      ctx.set_sink(sink.get());
    }
    if (progress) {
      reporter = std::make_unique<obs::StreamProgress>();
      ctx.set_progress(reporter.get());
    }
  }

 private:
  std::string seed_text;  // parsed lazily so "no --seed" keeps defaults
};

int cmd_list() {
  for (const std::string& name : gen::known_circuits()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_stats(const std::string& which) {
  const netlist::Netlist nl = load(which);
  const netlist::CircuitStats s = netlist::compute_stats(nl);
  std::printf("circuit: %s\n%s\n", nl.name().c_str(),
              netlist::to_string(s).c_str());
  const auto violations = netlist::validate(nl);
  std::printf("design-rule violations: %zu\n", violations.size());
  for (const auto& v : violations) {
    std::printf("  %s\n", v.message.c_str());
  }
  return violations.empty() ? 0 : 1;
}

int cmd_bench(const std::string& which) {
  std::printf("%s", netlist::write_bench(load(which)).c_str());
  return 0;
}

int cmd_faults(const std::string& which, CommonFlags& common) {
  core::RunContext ctx;
  common.configure(ctx);
  const core::Workbench wb(load(which), ctx.options);
  const auto& det = wb.detectability();
  std::printf("circuit: %s\n", wb.name().c_str());
  std::printf("collapsed stuck-at faults: %zu\n", wb.universe().size());
  std::printf("  detectable:  %zu (%zu by random sim, %zu by PODEM)\n",
              det.num_detectable, det.detected_by_random, det.detected_by_atpg);
  std::printf("  untestable:  %zu (proven redundant)\n", det.num_untestable);
  std::printf("  aborted:     %zu (PODEM backtrack limit)\n", det.num_aborted);
  if (ctx.sink()) {
    obs::TraceEvent ev("detectability");
    ev.str("circuit", wb.name())
        .u64("faults", wb.universe().size())
        .u64("detectable", det.num_detectable)
        .u64("untestable", det.num_untestable)
        .u64("aborted", det.num_aborted);
    ctx.emit(ev);
    ctx.flush();
  }
  return 0;
}

int cmd_cop(const std::string& which, std::size_t top) {
  const netlist::Netlist nl = load(which);
  const sim::CompiledCircuit cc(nl);
  const analysis::CopResult cop = analysis::compute_cop(cc);
  const auto faults = fault::collapsed_universe(nl);
  std::vector<std::pair<double, const fault::Fault*>> ranked;
  for (const auto& f : faults) {
    ranked.emplace_back(analysis::detection_probability(cop, cc, f), &f);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  report::Table table({"fault", "det prob", "expected patterns"});
  for (std::size_t k = 0; k < top && k < ranked.size(); ++k) {
    table.add_row(
        {fault_name(nl, *ranked[k].second),
         report::format_fixed(ranked[k].first, 6),
         report::format_cycles(static_cast<std::uint64_t>(std::min(
             analysis::expected_pattern_count(ranked[k].first), 1e18)))});
  }
  std::printf("%zu hardest faults by COP estimate:\n%s", top,
              table.to_string().c_str());
  return 0;
}

int cmd_tables(const std::string& which, CommonFlags& common) {
  core::RunContext ctx;
  common.configure(ctx);
  const netlist::Netlist nl = load(which);
  const auto combos = core::enumerate_default_combos(nl.num_state_vars());
  report::Table table({"rank", "LA", "LB", "N", "Ncyc0"});
  for (std::size_t k = 0; k < 10 && k < combos.size(); ++k) {
    table.add_row({std::to_string(k + 1), std::to_string(combos[k].l_a),
                   std::to_string(combos[k].l_b), std::to_string(combos[k].n),
                   std::to_string(combos[k].ncyc0)});
    if (ctx.sink()) {
      obs::TraceEvent ev("combo_rank");
      ev.u64("rank", k + 1)
          .u64("la", combos[k].l_a)
          .u64("lb", combos[k].l_b)
          .u64("n", combos[k].n)
          .u64("ncyc0", combos[k].ncyc0);
      ctx.emit(ev);
    }
  }
  ctx.flush();
  std::printf("first 10 combinations by Ncyc0 (NSV = %zu):\n%s",
              nl.num_state_vars(), table.to_string().c_str());
  return 0;
}

int cmd_run(const std::string& which, CommonFlags& common, std::uint64_t la,
            std::uint64_t lb, std::uint64_t n, std::uint64_t max_iters,
            bool d1_desc, std::uint64_t combo_jobs,
            const std::string& store_dir, bool resume,
            std::uint64_t gc_max_bytes) {
  if (resume && store_dir.empty()) {
    throw cli::FlagError("--resume requires --store-dir");
  }
  if (gc_max_bytes > 0 && store_dir.empty()) {
    throw cli::FlagError("--gc-max-bytes requires --store-dir");
  }
  core::RunContext ctx;
  common.configure(ctx);
  if (max_iters > 0) {
    ctx.options.p2.max_iterations = static_cast<std::uint32_t>(max_iters);
  }
  if (d1_desc) ctx.options.p2.d1_order = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  ctx.options.combo_jobs = static_cast<unsigned>(combo_jobs);
  if (combo_jobs != 1 && ctx.options.p2.sim_threads == 0) {
    // Speculative attempts parallelize across combos; without an explicit
    // --threads, keep each attempt's inner fault simulation serial so
    // combo_jobs x sim_threads doesn't oversubscribe the machine.
    ctx.options.p2.sim_threads = 1;
  }
  core::Workbench wb(load(which), ctx.options);
  std::unique_ptr<store::ArtifactStore> artifacts;
  std::unique_ptr<store::CampaignStore> cstore;
  if (!store_dir.empty()) {
    artifacts = std::make_unique<store::ArtifactStore>(store_dir);
    cstore = std::make_unique<store::CampaignStore>(
        *artifacts, wb.nl(), wb.target_faults(), resume);
    ctx.set_store(cstore.get());
  }
  const core::ExperimentRow row =
      (la && lb && n)
          ? core::run_single_combo(
                wb,
                core::Combo{static_cast<std::size_t>(la),
                            static_cast<std::size_t>(lb),
                            static_cast<std::size_t>(n), 0},
                ctx)
          : core::run_first_complete(wb, ctx);
  if (ctx.sink()) {
    ctx.emit_counters();
    ctx.flush();
  }

  std::printf("circuit %s: LA=%zu LB=%zu N=%zu (Ncyc0=%llu) engine=%s\n",
              row.circuit.c_str(), row.combo.l_a, row.combo.l_b, row.combo.n,
              static_cast<unsigned long long>(row.combo.ncyc0),
              fault::engine_name(ctx.options.p2.engine));
  std::printf("TS_0: %zu / %zu faults, %s cycles\n", row.result.ts0_detected,
              row.target_faults,
              report::format_cycles(row.result.ncyc0).c_str());
  for (const core::AppliedSet& a : row.result.applied) {
    std::printf("  TS(I=%u,D1=%u): +%zu, %s cycles\n", a.iteration, a.d1,
                a.detected, report::format_cycles(a.cycles).c_str());
  }
  std::printf("total: %zu / %zu detected (%s), %s cycles, ls=%.2f\n",
              row.result.total_detected, row.target_faults,
              row.found_complete ? "complete" : "incomplete",
              report::format_cycles(row.result.total_cycles()).c_str(),
              row.result.average_limited_scan_units());
  if (artifacts) {
    const auto& c = ctx.counters();
    std::printf(
        "store: %zu artifact(s), %llu bytes (%llu written, %llu read; "
        "%llu cache hit(s), %llu checkpoint(s), %llu resume(s))\n",
        artifacts->size(),
        static_cast<unsigned long long>(artifacts->total_bytes()),
        static_cast<unsigned long long>(c.value("store.bytes_written")),
        static_cast<unsigned long long>(c.value("store.bytes_read")),
        static_cast<unsigned long long>(c.value("store.cache_hit")),
        static_cast<unsigned long long>(c.value("store.checkpoint_saves")),
        static_cast<unsigned long long>(c.value("store.resumes")));
    if (gc_max_bytes > 0) {
      const store::ArtifactStore::GcStats g = artifacts->gc(gc_max_bytes);
      std::printf("store gc: removed %llu file(s) / %llu bytes, kept %llu "
                  "bytes\n",
                  static_cast<unsigned long long>(g.removed_files),
                  static_cast<unsigned long long>(g.removed_bytes),
                  static_cast<unsigned long long>(g.kept_bytes));
    }
  }
  return row.found_complete ? 0 : 2;
}

/// Everything `rls lint` accepts beyond the circuit argument.
struct LintFlags {
  bool json = false;
  bool no_resistance = false;
  double threshold = 0.5;
  std::uint64_t la = 0, lb = 0, n = 0;
  std::uint64_t max_resistant = 20;

  void add_to(cli::FlagParser& fp) {
    fp.add_bool("json", &json, "emit diagnostics as JSONL on stdout");
    fp.add_bool("no-resistance", &no_resistance,
                "skip the COP resistance pass (structural checks only)");
    fp.add_double("threshold", &threshold,
                  "flag faults with escape probability >= this (default 0.5)");
    fp.add_uint("la", &la, "resistance budget: short test length");
    fp.add_uint("lb", &lb, "resistance budget: long test length");
    fp.add_uint("n", &n, "resistance budget: tests per length");
    fp.add_uint("max-resistant", &max_resistant,
                "cap on individual RLS-I301 diagnostics (default 20)");
  }

  [[nodiscard]] analysis::LintOptions to_options() const {
    analysis::LintOptions opts;
    opts.resistance = !no_resistance;
    opts.escape_threshold = threshold;
    if (la) opts.budget.l_a = static_cast<std::size_t>(la);
    if (lb) opts.budget.l_b = static_cast<std::size_t>(lb);
    if (n) opts.budget.n = static_cast<std::size_t>(n);
    opts.max_resistant_report = static_cast<std::size_t>(max_resistant);
    return opts;
  }
};

int cmd_lint(const std::string& which, CommonFlags& common,
             const LintFlags& flags) {
  const analysis::LintOptions opts = flags.to_options();
  // Registry circuits always build; files go through the tolerant source
  // scanner so defects the Netlist constructor rejects still get reported
  // as diagnostics instead of a hard parse error.
  analysis::LintResult result;
  std::string name = which;
  if (gen::is_known_circuit(which)) {
    result = analysis::run_lint(gen::make_circuit(which), opts);
  } else {
    std::ifstream in(which);
    if (!in.good()) {
      throw std::runtime_error(
          "'" + which +
          "' is neither a known circuit (see `rls list`) nor a readable "
          ".bench file");
    }
    std::ostringstream text;
    text << in.rdbuf();
    result = analysis::run_lint_source(text.str(), which, opts);
  }

  core::RunContext ctx;
  common.configure(ctx);
  if (ctx.sink()) {
    analysis::emit(result, *ctx.sink());
    ctx.flush();
  }
  if (flags.json) {
    obs::JsonlSink out(stdout);
    analysis::emit(result, out);
    out.flush();
  } else {
    for (const auto& d : result.diagnostics) {
      std::printf("%s\n", analysis::format_text(d).c_str());
    }
    std::printf("%s: %zu error(s), %zu warning(s), %zu info\n", name.c_str(),
                result.count(analysis::Severity::kError),
                result.count(analysis::Severity::kWarning),
                result.count(analysis::Severity::kInfo));
  }
  return result.exit_code();
}

int usage() {
  std::fprintf(stderr,
               "usage: rls <list|stats|bench|faults|cop|tables|run|lint> "
               "[circuit] [options]\n"
               "common options: --engine=conediff|fullsweep|packed "
               "--threads=N "
               "--seed=S --trace=FILE --progress\n"
               "run options:    --la=N --lb=N --n=N --max-iters=N --d1-desc "
               "--combo-jobs=W\n"
               "                --store-dir=DIR --resume --gc-max-bytes=N\n"
               "lint options:   --json --no-resistance --threshold=P "
               "--la=N --lb=N --n=N --max-resistant=K\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();

    cli::FlagParser fp;
    CommonFlags common;
    common.add_to(fp);
    std::uint64_t la = 0, lb = 0, n = 0, max_iters = 0, top = 10;
    std::uint64_t combo_jobs = 1;
    bool d1_desc = false;
    std::string store_dir;
    bool resume = false;
    std::uint64_t gc_max_bytes = 0;
    LintFlags lint_flags;
    if (cmd == "lint") lint_flags.add_to(fp);
    if (cmd == "run") {
      fp.add_uint("la", &la, "TS_0 short test length");
      fp.add_uint("lb", &lb, "TS_0 long test length");
      fp.add_uint("n", &n, "tests per length");
      fp.add_uint("max-iters", &max_iters, "Procedure 2 iteration cap");
      fp.add_bool("d1-desc", &d1_desc, "sweep D1 descending 10..1");
      fp.add_uint("combo-jobs", &combo_jobs,
                  "speculative combo attempts in flight (0 = hardware); "
                  "forces --threads=1 per attempt unless --threads is given");
      fp.add_string("store-dir", &store_dir,
                    "content-addressed artifact store (cache + checkpoints)");
      fp.add_bool("resume", &resume,
                  "continue from the checkpoints in --store-dir");
      fp.add_uint("gc-max-bytes", &gc_max_bytes,
                  "after the run, shrink the store to at most N bytes");
    }
    const std::vector<std::string> pos = fp.parse(argc, argv, 2);
    if (pos.empty()) return usage();
    const std::string& which = pos[0];

    if (cmd == "stats") return cmd_stats(which);
    if (cmd == "bench") return cmd_bench(which);
    if (cmd == "faults") return cmd_faults(which, common);
    if (cmd == "cop") {
      if (pos.size() > 1) top = std::stoull(pos[1]);
      return cmd_cop(which, static_cast<std::size_t>(top));
    }
    if (cmd == "tables") return cmd_tables(which, common);
    if (cmd == "lint") return cmd_lint(which, common, lint_flags);
    if (cmd == "run") {
      return cmd_run(which, common, la, lb, n, max_iters, d1_desc, combo_jobs,
                     store_dir, resume, gc_max_bytes);
    }
  } catch (const cli::FlagError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
