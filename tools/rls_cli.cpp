// rls — command-line front end to the Random Limited-Scan library.
//
//   rls list                          known benchmark circuits
//   rls stats   <circuit|file.bench>  interface / size / depth summary
//   rls bench   <circuit>             dump the netlist in .bench format
//   rls faults  <circuit>             fault universe + detectability report
//   rls cop     <circuit> [n]         the n hardest faults by COP estimate
//   rls run     <circuit> [options]   Procedure 2 (one Table-6 style row)
//   rls batch   <requests.json>       run an NDJSON request file (svc API)
//   rls serve   [options]             NDJSON requests on stdin (svc API);
//                                     --listen=PORT serves them over TCP
//   rls client  <host:port> [file]    send NDJSON requests to `rls serve`
//   rls tables  <circuit>             Table-5 style (L_A,L_B,N) ranking
//   rls lint    <circuit|file.bench>  design-rule + resistance diagnostics
//   rls analyze <circuit|file.bench>  static testability (ternary + SCOAP)
//   rls fuzz    [options]             differential fuzzing (rls::fuzz)
//
// `<circuit>` is a registry name (s27, s208, ..., b11) or a path to an
// ISCAS-89 .bench file. Common flags (uniform across circuit-taking
// subcommands):
//   --engine=conediff|fullsweep|packed   fault-simulation engine
//   --threads=N                   simulation worker threads (0 = hardware)
//   --seed=S                      base seed (Procedure 1 + detectability)
//   --trace=FILE                  JSONL event stream ("-" = stdout)
//   --progress                    live status lines on stderr
//
// `run`, `batch` and `serve` all route through svc::CampaignService —
// `rls run` builds a svc::CampaignRequest from its flags (print it with
// --dump-request) and executes it synchronously.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/cop.hpp"
#include "analysis/lint.hpp"
#include "analysis/sta.hpp"
#include "cli/flags.hpp"
#include "core/campaign.hpp"
#include "core/run_context.hpp"
#include "fault/collapse.hpp"
#include "fuzz/fuzz.hpp"
#include "gen/registry.hpp"
#include "net/client.hpp"
#include "net/framing.hpp"
#include "net/server.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "netlist/validate.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "report/format.hpp"
#include "scan/cost.hpp"
#include "store/artifact_store.hpp"
#include "store/checkpoint.hpp"
#include "svc/request.hpp"
#include "svc/service.hpp"

namespace {

using namespace rls;

netlist::Netlist load(const std::string& which) {
  // Registry names win; anything else must be an existing, readable file.
  if (gen::is_known_circuit(which)) return gen::make_circuit(which);
  if (!std::ifstream(which).good()) {
    throw std::runtime_error(
        "'" + which +
        "' is neither a known circuit (see `rls list`) nor a readable "
        ".bench file");
  }
  return netlist::load_bench_file(which);
}

/// Flags shared by every circuit-taking subcommand, plus the observability
/// wiring they configure. Register with `add_to`, then `configure` a
/// RunContext after parsing (the sinks outlive the returned object).
struct CommonFlags {
  std::string engine = "conediff";
  std::uint64_t threads = 0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  std::string trace;
  bool progress = false;

  std::unique_ptr<obs::JsonlSink> sink;
  std::unique_ptr<obs::StreamProgress> reporter;

  void add_to(cli::FlagParser& fp) {
    fp.add_string("engine", &engine,
                  "conediff (default), fullsweep, or packed");
    fp.add_uint("threads", &threads, "sim worker threads (0 = hardware)");
    fp.add_string("seed", &seed_text, "base seed (decimal)");
    fp.add_string("trace", &trace, "write JSONL event trace to FILE");
    fp.add_bool("progress", &progress, "live status lines on stderr");
  }

  /// Folds the parsing-only flags into an options struct (no sinks).
  void apply_options(core::CampaignOptions& opts) {
    if (!seed_text.empty()) {
      const std::uint64_t s = cli::parse_uint("--seed", seed_text);
      opts.p2.base_seed = s;
      opts.detect.seed = s;
    }
    if (const std::optional<fault::Engine> e = fault::parse_engine(engine)) {
      opts.p2.engine = *e;
    } else {
      throw cli::FlagError("--engine expects one of " +
                           std::string(fault::engine_choices()) + ", got '" +
                           engine + "'");
    }
    opts.p2.sim_threads = static_cast<unsigned>(threads);
  }

  /// Opens the trace/progress sinks and wires them into the context.
  void attach(core::RunContext& ctx) {
    if (!trace.empty()) {
      sink = trace == "-" ? std::make_unique<obs::JsonlSink>(stdout)
                          : std::make_unique<obs::JsonlSink>(trace);
      ctx.set_sink(sink.get());
    }
    if (progress) {
      reporter = std::make_unique<obs::StreamProgress>();
      ctx.set_progress(reporter.get());
    }
  }

  void configure(core::RunContext& ctx) {
    apply_options(ctx.options);
    attach(ctx);
  }

 private:
  std::string seed_text;  // parsed lazily so "no --seed" keeps defaults
};

int cmd_list() {
  for (const std::string& name : gen::known_circuits()) {
    std::printf("%s\n", name.c_str());
  }
  return 0;
}

int cmd_stats(const std::string& which) {
  const netlist::Netlist nl = load(which);
  const netlist::CircuitStats s = netlist::compute_stats(nl);
  std::printf("circuit: %s\n%s\n", nl.name().c_str(),
              netlist::to_string(s).c_str());
  const auto violations = netlist::validate(nl);
  std::printf("design-rule violations: %zu\n", violations.size());
  for (const auto& v : violations) {
    std::printf("  %s\n", v.message.c_str());
  }
  return violations.empty() ? 0 : 1;
}

int cmd_bench(const std::string& which) {
  std::printf("%s", netlist::write_bench(load(which)).c_str());
  return 0;
}

int cmd_faults(const std::string& which, CommonFlags& common) {
  core::RunContext ctx;
  common.configure(ctx);
  const core::Workbench wb(load(which), ctx.options);
  const auto& det = wb.detectability();
  std::printf("circuit: %s\n", wb.name().c_str());
  std::printf("collapsed stuck-at faults: %zu\n", wb.universe().size());
  std::printf("  detectable:  %zu (%zu by random sim, %zu by PODEM)\n",
              det.num_detectable, det.detected_by_random, det.detected_by_atpg);
  std::printf("  untestable:  %zu (proven redundant)\n", det.num_untestable);
  std::printf("  aborted:     %zu (PODEM backtrack limit)\n", det.num_aborted);
  if (ctx.sink()) {
    obs::TraceEvent ev("detectability");
    ev.str("circuit", wb.name())
        .u64("faults", wb.universe().size())
        .u64("detectable", det.num_detectable)
        .u64("untestable", det.num_untestable)
        .u64("aborted", det.num_aborted);
    ctx.emit(ev);
    ctx.flush();
  }
  return 0;
}

int cmd_cop(const std::string& which, std::size_t top) {
  const netlist::Netlist nl = load(which);
  const sim::CompiledCircuit cc(nl);
  const analysis::CopResult cop = analysis::compute_cop(cc);
  const auto faults = fault::collapsed_universe(nl);
  std::vector<std::pair<double, const fault::Fault*>> ranked;
  for (const auto& f : faults) {
    ranked.emplace_back(analysis::detection_probability(cop, cc, f), &f);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  report::Table table({"fault", "det prob", "expected patterns"});
  for (std::size_t k = 0; k < top && k < ranked.size(); ++k) {
    table.add_row(
        {fault_name(nl, *ranked[k].second),
         report::format_fixed(ranked[k].first, 6),
         report::format_cycles(static_cast<std::uint64_t>(std::min(
             analysis::expected_pattern_count(ranked[k].first), 1e18)))});
  }
  std::printf("%zu hardest faults by COP estimate:\n%s", top,
              table.to_string().c_str());
  return 0;
}

int cmd_tables(const std::string& which, CommonFlags& common) {
  core::RunContext ctx;
  common.configure(ctx);
  const netlist::Netlist nl = load(which);
  const auto combos = core::enumerate_default_combos(nl.num_state_vars());
  report::Table table({"rank", "LA", "LB", "N", "Ncyc0"});
  for (std::size_t k = 0; k < 10 && k < combos.size(); ++k) {
    table.add_row({std::to_string(k + 1), std::to_string(combos[k].l_a),
                   std::to_string(combos[k].l_b), std::to_string(combos[k].n),
                   std::to_string(combos[k].ncyc0)});
    if (ctx.sink()) {
      obs::TraceEvent ev("combo_rank");
      ev.u64("rank", k + 1)
          .u64("la", combos[k].l_a)
          .u64("lb", combos[k].l_b)
          .u64("n", combos[k].n)
          .u64("ncyc0", combos[k].ncyc0);
      ctx.emit(ev);
    }
  }
  ctx.flush();
  std::printf("first 10 combinations by Ncyc0 (NSV = %zu):\n%s",
              nl.num_state_vars(), table.to_string().c_str());
  return 0;
}

/// `rls run` flags beyond the common set (all svc-request fields).
struct RunFlags {
  std::uint64_t la = 0, lb = 0, n = 0, max_iters = 0, combo_jobs = 1;
  bool d1_desc = false;
  bool prune_untestable = false;
  std::string store_dir;
  bool resume = false;
  std::uint64_t gc_max_bytes = 0;
  bool dump_request = false;
  bool timing = false;
};

/// Value of a response counter (sorted snapshot; linear scan is fine).
std::uint64_t counter(const svc::CampaignResponse& resp,
                      std::string_view name) {
  for (const auto& [key, value] : resp.counters) {
    if (key == name) return value;
  }
  return 0;
}

/// Writes a response's JSONL event stream to `path` ("-" = stdout).
void write_stream(const std::string& path, const std::string& stream) {
  if (path == "-") {
    std::fwrite(stream.data(), 1, stream.size(), stdout);
    std::fflush(stdout);
    return;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    throw std::runtime_error("cannot open stream file '" + path + "'");
  }
  out.write(stream.data(), static_cast<std::streamsize>(stream.size()));
}

int cmd_run(const std::string& which, CommonFlags& common,
            const RunFlags& flags) {
  if (flags.resume && flags.store_dir.empty()) {
    throw cli::FlagError("--resume requires --store-dir");
  }
  if (flags.gc_max_bytes > 0 && flags.store_dir.empty()) {
    throw cli::FlagError("--gc-max-bytes requires --store-dir");
  }

  svc::CampaignRequest req;
  req.circuit = which;
  req.la = flags.la;
  req.lb = flags.lb;
  req.n = flags.n;
  common.apply_options(req.options);
  if (flags.max_iters > 0) {
    req.options.p2.max_iterations =
        static_cast<std::uint32_t>(flags.max_iters);
  }
  if (flags.d1_desc) req.options.p2.d1_order = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  req.options.prune_untestable = flags.prune_untestable;
  req.options.combo_jobs = static_cast<unsigned>(flags.combo_jobs);
  req.timing = flags.timing;
  if (flags.dump_request) {
    std::printf("%s\n", req.canonical_json().c_str());
    return 0;
  }

  const char* engine_name = fault::engine_name(req.options.p2.engine);
  svc::ServiceConfig cfg;
  cfg.store_dir = flags.store_dir;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.resume = flags.resume;
  svc::CampaignService service(std::move(cfg));
  if (common.progress) {
    common.reporter = std::make_unique<obs::StreamProgress>();
  }
  const svc::CampaignResponse resp =
      service.run(std::move(req), common.reporter.get());
  if (!resp.ok) {
    std::fprintf(stderr, "error: %s\n", resp.error.c_str());
    return 1;
  }
  if (!common.trace.empty()) write_stream(common.trace, resp.stream);

  std::printf("circuit %s: LA=%llu LB=%llu N=%llu (Ncyc0=%llu) engine=%s\n",
              resp.circuit.c_str(),
              static_cast<unsigned long long>(resp.la),
              static_cast<unsigned long long>(resp.lb),
              static_cast<unsigned long long>(resp.n),
              static_cast<unsigned long long>(resp.ncyc0), engine_name);
  std::printf("TS_0: %llu / %llu faults, %s cycles\n",
              static_cast<unsigned long long>(resp.ts0_detected),
              static_cast<unsigned long long>(resp.targets),
              report::format_cycles(resp.ncyc0).c_str());
  for (const svc::CampaignResponse::AppliedRow& a : resp.applied) {
    std::printf("  TS(I=%u,D1=%u): +%llu, %s cycles\n", a.iteration, a.d1,
                static_cast<unsigned long long>(a.detected),
                report::format_cycles(a.cycles).c_str());
  }
  std::printf("total: %llu / %llu detected (%s), %s cycles, ls=%.2f\n",
              static_cast<unsigned long long>(resp.detected),
              static_cast<unsigned long long>(resp.targets),
              resp.complete ? "complete" : "incomplete",
              report::format_cycles(resp.total_cycles).c_str(), resp.ls);
  if (store::ArtifactStore* artifacts = service.artifact_store()) {
    std::printf(
        "store: %zu artifact(s), %llu bytes (%llu written, %llu read; "
        "%llu cache hit(s), %llu checkpoint(s), %llu resume(s))\n",
        artifacts->size(),
        static_cast<unsigned long long>(artifacts->total_bytes()),
        static_cast<unsigned long long>(counter(resp, "store.bytes_written")),
        static_cast<unsigned long long>(counter(resp, "store.bytes_read")),
        static_cast<unsigned long long>(counter(resp, "store.cache_hit")),
        static_cast<unsigned long long>(
            counter(resp, "store.checkpoint_saves")),
        static_cast<unsigned long long>(counter(resp, "store.resumes")));
    if (flags.gc_max_bytes > 0) {
      const store::ArtifactStore::GcStats g =
          artifacts->gc(flags.gc_max_bytes);
      std::printf("store gc: removed %llu file(s) / %llu bytes, kept %llu "
                  "bytes\n",
                  static_cast<unsigned long long>(g.removed_files),
                  static_cast<unsigned long long>(g.removed_bytes),
                  static_cast<unsigned long long>(g.kept_bytes));
    }
  }
  return resp.complete ? 0 : 2;
}

/// Flags shared by `rls batch` and `rls serve`.
struct SvcFlags {
  std::string store_dir;
  std::string stream_dir;
  std::uint64_t workers = 1;
  std::uint64_t queue_cap = 64;
  std::uint64_t gc_shard_bytes = 0;
  bool resume = false;
  // serve-only (ignored by batch):
  std::string listen;  ///< TCP port to listen on ("" = stdin mode)
  std::string bind = "127.0.0.1";
  std::string trace;   ///< net_conn/net_rr JSONL sink (TCP mode)
  std::uint64_t max_line_bytes = 1 << 20;
  std::uint64_t max_write_buffer = 4u << 20;

  void add_to(cli::FlagParser& fp, bool serve) {
    fp.add_string("store-dir", &store_dir,
                  "shared sharded artifact store (cache + checkpoints)");
    fp.add_string("stream-dir", &stream_dir,
                  "write each response's JSONL stream to DIR/<id>.jsonl");
    fp.add_uint("workers", &workers,
                "concurrent campaign executions (0 = hardware)");
    fp.add_uint("queue-cap", &queue_cap,
                "admission queue capacity (default 64, must be nonzero)");
    fp.add_uint("gc-shard-bytes", &gc_shard_bytes,
                "per-shard gc byte budget, one shard per finished run");
    fp.add_bool("resume", &resume,
                "adopt partial checkpoints from --store-dir");
    if (serve) {
      fp.add_string("listen", &listen,
                    "serve NDJSON over TCP on this port (0 = ephemeral; "
                    "default: stdin)");
      fp.add_string("bind", &bind,
                    "TCP listen address (default 127.0.0.1)");
      fp.add_string("trace", &trace,
                    "write net_conn/net_rr events to FILE (TCP mode)");
      fp.add_uint("max-line-bytes", &max_line_bytes,
                  "reject request lines longer than this (default 1MiB)");
      fp.add_uint("max-write-buffer", &max_write_buffer,
                  "per-connection un-acked response byte cap before a "
                  "typed overflow disconnect (default 4MiB)");
    }
  }

  [[nodiscard]] svc::ServiceConfig to_config() const {
    if (resume && store_dir.empty()) {
      throw cli::FlagError("--resume requires --store-dir");
    }
    if (gc_shard_bytes > 0 && store_dir.empty()) {
      throw cli::FlagError("--gc-shard-bytes requires --store-dir");
    }
    if (queue_cap == 0) {
      throw cli::FlagError(
          "--queue-cap=0 would reject every request (the queue admits "
          "leaders only; give it at least 1 slot)");
    }
    svc::ServiceConfig cfg;
    cfg.store_dir = store_dir;
    cfg.workers = static_cast<unsigned>(workers);
    cfg.queue_capacity = static_cast<std::size_t>(queue_cap);
    cfg.resume = resume;
    cfg.gc_shard_bytes = gc_shard_bytes;
    return cfg;
  }
};

/// Emits one response: the envelope on stdout (NDJSON), the stream to
/// --stream-dir when given. Returns resp.ok.
bool emit_response(const svc::CampaignResponse& resp,
                   const std::string& stream_dir) {
  if (!stream_dir.empty() && resp.ok) {
    std::error_code ec;
    std::filesystem::create_directories(stream_dir, ec);  // best effort
    std::string name;
    for (const char c : resp.id) {
      name.push_back(c == '/' ? '_' : c);  // ids may not escape the dir
    }
    write_stream(stream_dir + "/" + name + ".jsonl", resp.stream);
  }
  std::printf("%s\n", resp.to_json().c_str());
  std::fflush(stdout);
  return resp.ok;
}

svc::CampaignResponse parse_error_response(
    std::string id, std::string what,
    std::string code = svc::error_code::kRequest,
    std::uint64_t retry_after_hint = 0) {
  svc::CampaignResponse resp;
  resp.id = std::move(id);
  resp.ok = false;
  resp.error = std::move(what);
  resp.error_code = std::move(code);
  resp.retry_after_hint = retry_after_hint;
  return resp;
}

int cmd_batch(const std::string& file, const SvcFlags& flags) {
  std::ifstream fin;
  std::istream* in = &std::cin;
  if (file != "-") {
    fin.open(file);
    if (!fin.good()) {
      throw std::runtime_error("cannot read request file '" + file + "'");
    }
    in = &fin;
  }
  // One entry per input line: a parsed request or an immediate parse
  // error. Requests are admitted as one batch (single admission lock) so
  // duplicate keys coalesce deterministically.
  struct Entry {
    std::optional<svc::CampaignRequest> req;
    std::optional<svc::CampaignResponse> parse_error;
  };
  std::vector<Entry> entries;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Entry e;
    const std::string origin = file + ":" + std::to_string(lineno);
    try {
      e.req = svc::parse_request(line, origin);
    } catch (const std::exception& err) {
      e.parse_error = parse_error_response("line" + std::to_string(lineno),
                                           err.what());
    }
    entries.push_back(std::move(e));
  }

  svc::CampaignService service(flags.to_config());
  std::vector<svc::CampaignRequest> reqs;
  for (Entry& e : entries) {
    if (e.req) reqs.push_back(std::move(*e.req));
  }
  std::vector<std::shared_future<svc::CampaignResponse>> futures =
      service.submit_batch(std::move(reqs));

  bool all_ok = true;
  std::size_t next_future = 0;
  for (const Entry& e : entries) {
    const svc::CampaignResponse resp =
        e.parse_error ? *e.parse_error : futures[next_future++].get();
    all_ok = emit_response(resp, flags.stream_dir) && all_ok;
  }
  return all_ok ? 0 : 1;
}

// Self-pipe written by the SIGINT/SIGTERM handler; poll()ed by both
// serve front ends so a stop request interrupts any blocking wait. The
// byte is never drained — once a stop is requested it stays requested.
int g_sig_pipe[2] = {-1, -1};

extern "C" void on_stop_signal(int) {
  const char byte = 's';
  (void)!::write(g_sig_pipe[1], &byte, 1);
}

void install_stop_handlers() {
  if (g_sig_pipe[0] < 0 && ::pipe(g_sig_pipe) != 0) {
    throw std::runtime_error("cannot create signal pipe");
  }
  struct sigaction sa {};
  sa.sa_handler = on_stop_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked reads must see EINTR
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // dead clients are per-connection events
}

/// stdin front end: NDJSON on stdin, envelopes on stdout. Shares the
/// framing (LineSplitter), line dispatch (parse_line: requests + cancel
/// control lines) and drain semantics with the TCP front end, so a
/// SIGTERM'd server leaves the same store state either way and
/// `--resume` picks up identically.
int serve_stdin(svc::CampaignService& service, const SvcFlags& flags) {
  std::deque<std::shared_future<svc::CampaignResponse>> pending;
  bool all_ok = true;
  // Responses print in admission order; completed leaders are drained
  // after every accepted chunk so a long-lived session streams results
  // instead of buffering them until EOF.
  const auto drain = [&](bool block) {
    while (!pending.empty()) {
      if (!block && pending.front().wait_for(std::chrono::seconds(0)) !=
                        std::future_status::ready) {
        break;
      }
      all_ok = emit_response(pending.front().get(), flags.stream_dir) &&
               all_ok;
      pending.pop_front();
    }
  };
  std::size_t lineno = 0;
  const auto handle_line = [&](std::string_view line) {
    ++lineno;
    if (line.find_first_not_of(" \t") == std::string_view::npos) return;
    const std::string origin = "stdin:" + std::to_string(lineno);
    try {
      svc::ParsedLine parsed = svc::parse_line(line, origin);
      if (parsed.cancel) {
        // No envelope for the control line itself — the outcome shows
        // up on the *target* request's envelope (typed `cancelled` when
        // it was still queued, the normal result when already running).
        service.cancel(parsed.cancel->target);
        return;
      }
      pending.push_back(service.submit(std::move(*parsed.request)));
    } catch (const svc::QueueFullError& e) {
      all_ok = emit_response(
                   parse_error_response(e.id, e.what(),
                                        svc::error_code::kQueueFull,
                                        e.retry_after_hint),
                   flags.stream_dir) &&
               all_ok;
    } catch (const std::exception& e) {
      all_ok = emit_response(
                   parse_error_response("line" + std::to_string(lineno),
                                        e.what()),
                   flags.stream_dir) &&
               all_ok;
    }
  };

  net::LineSplitter splitter(flags.max_line_bytes);
  bool stop_requested = false;
  bool eof = false;
  while (!stop_requested && !eof) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_sig_pipe[0], POLLIN, 0}};
    if (::poll(fds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      eof = true;
      break;
    }
    if (fds[1].revents != 0) {
      stop_requested = true;
      break;
    }
    if (fds[0].revents == 0) continue;
    char buf[1 << 16];
    const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof = true;
      break;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    try {
      splitter.feed({buf, static_cast<std::size_t>(n)}, handle_line);
    } catch (const net::FrameError& e) {
      // Framing is unrecoverable on a byte stream: the rest of the
      // input has no trustworthy line boundaries.
      all_ok = emit_response(
                   parse_error_response("line" + std::to_string(lineno + 1),
                                        e.what(), svc::error_code::kFrame),
                   flags.stream_dir) &&
               all_ok;
      eof = true;
    }
    drain(/*block=*/false);
  }
  if (eof && !stop_requested) {
    if (const std::optional<std::string> last = splitter.finish()) {
      handle_line(*last);
    }
  }
  if (stop_requested) {
    // The graceful-drain contract (same as TCP mode): stop admitting,
    // let claimed executions finish — their terminal checkpoints are
    // what `--resume` adopts on restart — and resolve queued-unclaimed
    // requests with typed `drained` envelopes, flushed below.
    service.drain();
  }
  drain(/*block=*/true);
  return stop_requested ? 0 : (all_ok ? 0 : 1);
}

/// TCP front end: NetServer does the per-connection work; this thread
/// just parks on the signal pipe, then runs the drain sequence.
int serve_tcp(svc::CampaignService& service, const SvcFlags& flags) {
  unsigned long port = 0;
  try {
    port = std::stoul(flags.listen);
  } catch (const std::exception&) {
    port = 65536;  // force the range error below
  }
  if (port > 65535) {
    throw cli::FlagError("--listen wants a TCP port (0..65535), got '" +
                         flags.listen + "'");
  }

  net::NetConfig cfg;
  cfg.bind_address = flags.bind;
  cfg.port = static_cast<std::uint16_t>(port);
  cfg.max_line_bytes = static_cast<std::size_t>(flags.max_line_bytes);
  cfg.max_write_buffer = static_cast<std::size_t>(flags.max_write_buffer);
  cfg.stream_dir = flags.stream_dir;
  net::NetServer server(service, cfg);

  std::unique_ptr<obs::JsonlSink> sink;
  if (!flags.trace.empty()) {
    sink = flags.trace == "-"
               ? std::make_unique<obs::JsonlSink>(stdout)
               : std::make_unique<obs::JsonlSink>(flags.trace);
    server.set_sink(sink.get());
  }

  // Tests (and shell scripts) discover an ephemeral port from this line.
  std::printf("rls serve: listening on %s:%u\n", flags.bind.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  for (;;) {
    pollfd pfd{g_sig_pipe[0], POLLIN, 0};
    if (::poll(&pfd, 1, -1) < 0 && errno == EINTR) continue;
    break;
  }
  // Order matters: drain the service first so queued work resolves into
  // typed `drained` envelopes, then shut the transport down so writers
  // flush those envelopes before the sockets close.
  service.drain();
  server.shutdown();
  return 0;
}

int cmd_serve(const SvcFlags& flags) {
  svc::CampaignService service(flags.to_config());
  install_stop_handlers();
  if (!flags.listen.empty()) return serve_tcp(service, flags);
  return serve_stdin(service, flags);
}

int cmd_client(const std::string& host_port, const std::string& file) {
  std::ifstream fin;
  std::istream* in = &std::cin;
  if (file != "-") {
    fin.open(file);
    if (!fin.good()) {
      throw std::runtime_error("cannot read request file '" + file + "'");
    }
    in = &fin;
  }
  net::NetClient client(host_port);
  std::string line;
  while (std::getline(*in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    client.send_line(line);
  }
  client.shutdown_write();
  bool all_ok = true;
  while (const std::optional<std::string> resp = client.recv_line()) {
    std::printf("%s\n", resp->c_str());
    std::fflush(stdout);
    // Envelope keys are unescaped in to_json output while string values
    // JSON-escape their quotes, so this literal only ever matches the
    // envelope's own ok field.
    if (resp->find("\"ok\":false") != std::string::npos) all_ok = false;
  }
  return all_ok ? 0 : 1;
}

/// Everything `rls lint` accepts beyond the circuit argument.
struct LintFlags {
  bool json = false;
  bool no_resistance = false;
  double threshold = 0.5;
  std::uint64_t la = 0, lb = 0, n = 0;
  std::uint64_t max_resistant = 20;

  void add_to(cli::FlagParser& fp) {
    fp.add_bool("json", &json, "emit diagnostics as JSONL on stdout");
    fp.add_bool("no-resistance", &no_resistance,
                "skip the COP resistance pass (structural checks only)");
    fp.add_double("threshold", &threshold,
                  "flag faults with escape probability >= this (default 0.5)");
    fp.add_uint("la", &la, "resistance budget: short test length");
    fp.add_uint("lb", &lb, "resistance budget: long test length");
    fp.add_uint("n", &n, "resistance budget: tests per length");
    fp.add_uint("max-resistant", &max_resistant,
                "cap on individual RLS-I301 diagnostics (default 20)");
  }

  [[nodiscard]] analysis::LintOptions to_options() const {
    analysis::LintOptions opts;
    opts.resistance = !no_resistance;
    opts.escape_threshold = threshold;
    if (la) opts.budget.l_a = static_cast<std::size_t>(la);
    if (lb) opts.budget.l_b = static_cast<std::size_t>(lb);
    if (n) opts.budget.n = static_cast<std::size_t>(n);
    opts.max_resistant_report = static_cast<std::size_t>(max_resistant);
    return opts;
  }
};

int cmd_lint(const std::string& which, CommonFlags& common,
             const LintFlags& flags) {
  const analysis::LintOptions opts = flags.to_options();
  // Registry circuits always build; files go through the tolerant source
  // scanner so defects the Netlist constructor rejects still get reported
  // as diagnostics instead of a hard parse error.
  analysis::LintResult result;
  std::string name = which;
  if (gen::is_known_circuit(which)) {
    result = analysis::run_lint(gen::make_circuit(which), opts);
  } else {
    std::ifstream in(which);
    if (!in.good()) {
      throw std::runtime_error(
          "'" + which +
          "' is neither a known circuit (see `rls list`) nor a readable "
          ".bench file");
    }
    std::ostringstream text;
    text << in.rdbuf();
    result = analysis::run_lint_source(text.str(), which, opts);
  }

  core::RunContext ctx;
  common.configure(ctx);
  if (ctx.sink()) {
    analysis::emit(result, *ctx.sink());
    ctx.flush();
  }
  if (flags.json) {
    obs::JsonlSink out(stdout);
    analysis::emit(result, out);
    out.flush();
  } else {
    for (const auto& d : result.diagnostics) {
      std::printf("%s\n", analysis::format_text(d).c_str());
    }
    std::printf("%s: %zu error(s), %zu warning(s), %zu info\n", name.c_str(),
                result.count(analysis::Severity::kError),
                result.count(analysis::Severity::kWarning),
                result.count(analysis::Severity::kInfo));
  }
  return result.exit_code();
}

/// Everything `rls analyze` accepts beyond the circuit argument.
struct AnalyzeFlags {
  bool json = false;
  bool scoap = false;
  bool untestable = false;

  void add_to(cli::FlagParser& fp) {
    fp.add_bool("json", &json, "emit the analysis as JSONL on stdout");
    fp.add_bool("scoap", &scoap,
                "include per-net SCOAP measures (sta_net events / table)");
    fp.add_bool("untestable", &untestable,
                "list every statically-untestable fault with its reason");
  }
};

int cmd_analyze(const std::string& which, CommonFlags& common,
                const AnalyzeFlags& flags) {
  const netlist::Netlist nl = load(which);
  const sim::CompiledCircuit cc(nl);
  const std::vector<fault::Fault> faults = fault::collapsed_universe(nl);
  const analysis::StaReport rep = analysis::analyze(cc);
  const analysis::StaFaultClasses cls =
      analysis::classify_faults(rep, cc, faults);
  std::string why;
  const bool consistent = analysis::sta_self_check(rep, cc, faults, &why);

  core::RunContext ctx;
  common.configure(ctx);
  if (ctx.sink()) {
    obs::TraceEvent ev =
        analysis::sta_trace_event(rep, cls, faults.size());
    ev.fields.insert(ev.fields.begin(),
                     std::make_pair(std::string("circuit"),
                                    obs::Value{nl.name()}));
    ctx.emit(ev);
    ctx.flush();
  }

  if (flags.json) {
    analysis::AnalyzeJsonOptions jopt;
    jopt.scoap = flags.scoap;
    jopt.untestable = flags.untestable;
    const std::string jsonl = analysis::analyze_jsonl(cc, faults, jopt);
    std::fwrite(jsonl.data(), 1, jsonl.size(), stdout);
  } else {
    std::printf("circuit: %s\n", nl.name().c_str());
    std::printf("nets: %zu (%zu ternary-constant, %zu derived)\n",
                rep.value.size(), rep.num_const_nets, rep.num_derived_const);
    std::printf("unobservable nets (CO = inf): %zu\n", rep.num_co_inf);
    std::printf("sequential fixpoint sweeps: %u\n", rep.fixpoint_iters);
    std::printf("collapsed stuck-at faults: %zu\n", faults.size());
    std::printf("  statically untestable: %zu (%zu unexcitable, "
                "%zu unobservable)\n",
                cls.num_untestable, cls.num_unexcitable, cls.num_unobservable);
    if (flags.scoap) {
      report::Table table({"net", "value", "CC0", "CC1", "CO"});
      const auto cell = [](std::uint32_t v) {
        return v == analysis::kScoapInf ? std::string("inf")
                                        : std::to_string(v);
      };
      const auto num_nets = static_cast<netlist::SignalId>(rep.value.size());
      for (netlist::SignalId s = 0; s < num_nets; ++s) {
        const std::int8_t v = rep.value[s];
        table.add_row({nl.signal_name(s),
                       v == analysis::kX ? "X" : std::to_string(int(v)),
                       cell(rep.cc0[s]), cell(rep.cc1[s]), cell(rep.co[s])});
      }
      std::printf("%s", table.to_string().c_str());
    }
    if (flags.untestable && cls.num_untestable > 0) {
      report::Table table({"fault", "reason"});
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (cls.reason[i] == analysis::UntestableReason::kTestable) continue;
        table.add_row({fault_name(nl, faults[i]),
                       analysis::untestable_reason_name(cls.reason[i])});
      }
      std::printf("%s", table.to_string().c_str());
    }
  }
  if (!consistent) {
    std::fprintf(stderr, "error: sta self-check failed: %s\n", why.c_str());
    return 1;
  }
  return 0;
}

struct FuzzFlags {
  std::uint64_t seeds = 100;
  std::uint64_t seed_begin = 0;
  std::uint64_t jobs = 1;
  std::uint64_t work_budget = 50'000'000;
  bool no_shrink = false;
  std::string corpus_dir;
  std::string findings;  // JSONL output file ("-" = stdout)
  std::string replay;    // replay a corpus directory instead of fuzzing
  std::string scratch_dir;

  void add_to(cli::FlagParser& fp) {
    fp.add_uint("seeds", &seeds, "number of seeds to run (default 100)");
    fp.add_uint("seed-begin", &seed_begin, "first seed (default 0)");
    fp.add_uint("jobs", &jobs, "parallel case workers (0 = hardware)");
    fp.add_uint("work-budget", &work_budget,
                "per-case gate-eval budget before timeout triage");
    fp.add_bool("no-shrink", &no_shrink, "report findings without shrinking");
    fp.add_string("corpus-dir", &corpus_dir,
                  "emit shrunken reproducers (.case/.bench) into DIR");
    fp.add_string("findings", &findings,
                  "write findings JSONL to FILE ('-' = stdout)");
    fp.add_string("replay", &replay,
                  "replay every *.case under DIR as a regression suite");
    fp.add_string("scratch-dir", &scratch_dir,
                  "store-oracle scratch root (default: system temp)");
  }
};

int cmd_fuzz(const FuzzFlags& flags) {
  fuzz::FuzzOptions opt;
  opt.seed_begin = flags.seed_begin;
  opt.num_seeds = flags.seeds;
  opt.jobs = static_cast<unsigned>(flags.jobs);
  opt.shrink = !flags.no_shrink;
  opt.work_budget = flags.work_budget;
  opt.scratch_dir = flags.scratch_dir;
  opt.corpus_dir = flags.corpus_dir;

  const fuzz::FuzzReport rep = flags.replay.empty()
                                   ? fuzz::run_fuzz(opt)
                                   : fuzz::replay_corpus(flags.replay, opt);
  const std::string jsonl = fuzz::findings_to_jsonl(rep.findings);
  if (!flags.findings.empty()) {
    if (flags.findings == "-") {
      std::fputs(jsonl.c_str(), stdout);
    } else {
      std::ofstream out(flags.findings, std::ios::binary | std::ios::trunc);
      if (!out.good()) {
        throw std::runtime_error("cannot write findings file '" +
                                 flags.findings + "'");
      }
      out << jsonl;
    }
  } else {
    std::fputs(jsonl.c_str(), stderr);
  }
  std::fprintf(stderr,
               "fuzz: %llu case(s), %llu oracle run(s), %llu gate-eval "
               "units, %zu finding(s)\n",
               static_cast<unsigned long long>(rep.cases_run),
               static_cast<unsigned long long>(rep.oracles_run),
               static_cast<unsigned long long>(rep.work_spent),
               rep.findings.size());
  return rep.findings.empty() ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: rls <list|stats|bench|faults|cop|tables|run|batch|"
               "serve|client|lint|analyze|fuzz> [circuit|file] [options]\n"
               "common options: --engine=conediff|fullsweep|packed "
               "--threads=N "
               "--seed=S --trace=FILE --progress\n"
               "run options:    --la=N --lb=N --n=N --max-iters=N --d1-desc "
               "--combo-jobs=W --prune-untestable\n"
               "                --store-dir=DIR --resume --gc-max-bytes=N "
               "--timing --dump-request\n"
               "batch/serve:    --store-dir=DIR --workers=W --queue-cap=N "
               "--resume\n"
               "                --gc-shard-bytes=N --stream-dir=DIR "
               "(requests: NDJSON, see docs/SERVICE.md)\n"
               "serve only:     --listen=PORT --bind=ADDR --trace=FILE "
               "--max-line-bytes=N --max-write-buffer=N\n"
               "client:         rls client <host:port> [requests.json|-]\n"
               "lint options:   --json --no-resistance --threshold=P "
               "--la=N --lb=N --n=N --max-resistant=K\n"
               "analyze options: --json --scoap --untestable\n"
               "fuzz options:   --seeds=N --seed-begin=S --jobs=J "
               "--work-budget=N --no-shrink\n"
               "                --corpus-dir=DIR --findings=FILE|- "
               "--replay=DIR --scratch-dir=DIR\n");
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();

    cli::FlagParser fp;
    CommonFlags common;
    std::uint64_t top = 10;
    RunFlags run_flags;
    SvcFlags svc_flags;
    LintFlags lint_flags;
    AnalyzeFlags analyze_flags;
    FuzzFlags fuzz_flags;
    const bool is_svc = cmd == "batch" || cmd == "serve";
    if (is_svc) {
      svc_flags.add_to(fp, /*serve=*/cmd == "serve");
    } else if (cmd == "client") {
      // client takes positionals only; keep the parser empty so any
      // flag is a typed usage error.
    } else if (cmd == "fuzz") {
      fuzz_flags.add_to(fp);
    } else {
      common.add_to(fp);
    }
    if (cmd == "lint") lint_flags.add_to(fp);
    if (cmd == "analyze") analyze_flags.add_to(fp);
    if (cmd == "run") {
      fp.add_uint("la", &run_flags.la, "TS_0 short test length");
      fp.add_uint("lb", &run_flags.lb, "TS_0 long test length");
      fp.add_uint("n", &run_flags.n, "tests per length");
      fp.add_uint("max-iters", &run_flags.max_iters,
                  "Procedure 2 iteration cap");
      fp.add_bool("d1-desc", &run_flags.d1_desc, "sweep D1 descending 10..1");
      fp.add_bool("prune-untestable", &run_flags.prune_untestable,
                  "statically prove + skip untestable faults (sta pass); "
                  "FC denominators are unchanged");
      fp.add_uint("combo-jobs", &run_flags.combo_jobs,
                  "speculative combo attempts in flight (0 = hardware); "
                  "forces --threads=1 per attempt unless --threads is given");
      fp.add_string("store-dir", &run_flags.store_dir,
                    "content-addressed artifact store (cache + checkpoints)");
      fp.add_bool("resume", &run_flags.resume,
                  "continue from the checkpoints in --store-dir");
      fp.add_uint("gc-max-bytes", &run_flags.gc_max_bytes,
                  "after the run, shrink the store to at most N bytes");
      fp.add_bool("dump-request", &run_flags.dump_request,
                  "print the canonical CampaignRequest JSON and exit");
      fp.add_bool("timing", &run_flags.timing,
                  "stamp wall-clock ms into the trace (off = deterministic)");
    }
    const std::vector<std::string> pos = fp.parse(argc, argv, 2);
    if (cmd == "serve") return cmd_serve(svc_flags);
    if (cmd == "fuzz") return cmd_fuzz(fuzz_flags);
    if (pos.empty()) return usage();
    const std::string& which = pos[0];

    if (cmd == "stats") return cmd_stats(which);
    if (cmd == "bench") return cmd_bench(which);
    if (cmd == "faults") return cmd_faults(which, common);
    if (cmd == "cop") {
      if (pos.size() > 1) top = cli::parse_uint("cop <n>", pos[1]);
      return cmd_cop(which, static_cast<std::size_t>(top));
    }
    if (cmd == "tables") return cmd_tables(which, common);
    if (cmd == "lint") return cmd_lint(which, common, lint_flags);
    if (cmd == "analyze") return cmd_analyze(which, common, analyze_flags);
    if (cmd == "run") return cmd_run(which, common, run_flags);
    if (cmd == "batch") return cmd_batch(which, svc_flags);
    if (cmd == "client") {
      return cmd_client(which, pos.size() > 1 ? pos[1] : "-");
    }
  } catch (const cli::FlagError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
