#!/usr/bin/env bash
# Static-analysis + sanitizer gate for the rls repo.
#
#   tools/run_static_checks.sh [--quick]
#
# Runs, in order:
#   1. clang-tidy (bugprone-*, concurrency-*, performance-* per .clang-tidy)
#      over src/ and tools/ — skipped with a notice when clang-tidy is not
#      installed (the CI container ships only g++);
#   2. `rls lint` over every registry circuit — structural diagnostics must
#      be clean (exit 0; resistance findings are Info and do not fail).
#      s420t is the one exception: its tied-input profile creates derived
#      constants by construction, so the sta pass must report exactly the
#      W107 dead-logic warnings (exit 2) — anything else fails the gate;
#   3. `rls analyze --untestable` over every registry circuit — the static
#      testability engine's machine-checked self-check (nonzero exit means
#      an internal inconsistency, never "untestable faults exist");
#   4. `rls fuzz` — a deterministic 500-seed differential-fuzz smoke (all
#      oracles; skipped with --quick) plus a replay of the committed
#      regression corpus under tests/fuzz_corpus/ (always runs) — zero
#      findings required for both;
#   5. unless --quick: the ASan+UBSan preset build + the rls::store suites
#      (StoreSerde / StoreArtifact / StoreNegative / StoreCheckpoint /
#      StoreResume / ...) plus the PackedFsim and campaign-service (Svc*)
#      suites — the adversarial corruption tests must be clean under
#      AddressSanitizer (typed errors, never UB), and so must the packed
#      engine's word machinery and the service's admission/coalescing path —
#      plus the net loopback determinism suite (NetFrame / NetLoopback /
#      NetDrain / NetSharedStore);
#   6. unless --quick: the TSan preset build + thread-heavy test suites
#      (ParallelFsim / PackedFsim / SweepEquiv / SweepAbort /
#      EngineCrossCheck / WorkerPool / StoreConcurrency / Svc* / Net* /
#      FuzzDeterminism) with suppressions from tools/tsan.supp.
#
# Exit code 0 means every gate that could run passed.
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

fail=0

# ---- 1. clang-tidy (advisory: container may not have clang) -------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  # compile_commands.json from the release tree; generate if missing.
  if [[ ! -f build/compile_commands.json ]]; then
    cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t sources < <(find src tools -name '*.cpp' | sort)
  if ! clang-tidy -p build --quiet "${sources[@]}"; then
    echo "clang-tidy: FAILED" >&2
    fail=1
  fi
else
  echo "== clang-tidy: not installed, skipping (advisory gate) =="
fi

# ---- 2. rls lint over the circuit registry ------------------------------
echo "== rls lint (registry circuits) =="
if [[ ! -x build/tools/rls ]]; then
  cmake --preset release >/dev/null
  cmake --build build --target rls -j"$(nproc)" >/dev/null
fi
while IFS= read -r circuit; do
  # Structural errors exit 1, warnings exit 2; both fail the gate — except
  # s420t, whose tied inputs synthesize dead logic on purpose, so the sta
  # pass's W107 warnings (exit 2) are the *expected* outcome there.
  rc=0
  build/tools/rls lint "$circuit" --no-resistance >/dev/null || rc=$?
  want=0
  [[ "$circuit" == "s420t" ]] && want=2
  if [[ "$rc" != "$want" ]]; then
    echo "rls lint $circuit: FAILED (exit $rc, expected $want)" >&2
    build/tools/rls lint "$circuit" --no-resistance || true
    fail=1
  fi
done < <(build/tools/rls list)
echo "lint: registry clean"

# ---- 3. rls analyze over the circuit registry ---------------------------
# The static testability engine re-derives its report per circuit and runs
# sta_self_check over it; a nonzero exit is an internal inconsistency
# (untestable faults merely existing is fine and exits 0).
echo "== rls analyze (registry circuits) =="
while IFS= read -r circuit; do
  if ! build/tools/rls analyze "$circuit" --untestable >/dev/null; then
    echo "rls analyze $circuit: FAILED (sta self-check)" >&2
    build/tools/rls analyze "$circuit" --untestable || true
    fail=1
  fi
done < <(build/tools/rls list)
echo "analyze: registry consistent"

# ---- 4. Differential fuzz smoke + corpus replay -------------------------
# Deterministic and bounded (~15 s of simulation): 500 seeds through every
# oracle, then the committed regression corpus. Any finding is a failure.
# --quick skips the seed smoke but still replays the corpus (cheap, and a
# regression there is always a real bug).
if [[ "$quick" == 0 ]]; then
  echo "== rls fuzz (500-seed smoke + corpus replay) =="
  if ! build/tools/rls fuzz --seeds 500 --findings - 2>/dev/null; then
    echo "rls fuzz smoke: FINDINGS (see above)" >&2
    fail=1
  fi
else
  echo "== rls fuzz smoke: skipped (--quick), corpus replay still runs =="
fi
if ! build/tools/rls fuzz --replay tests/fuzz_corpus --findings - 2>/dev/null; then
  echo "rls fuzz corpus replay: REGRESSION (see above)" >&2
  fail=1
fi
echo "fuzz: clean"

# ---- 5. ASan store suites -----------------------------------------------
if [[ "$quick" == 0 ]]; then
  echo "== ASan+UBSan (rls::store suites) =="
  cmake --preset asan >/dev/null
  cmake --build --preset asan -j"$(nproc)" >/dev/null
  if ! ctest --test-dir build-asan -R "Store|PackedFsim|Svc|NetFrame|NetLoopback|NetDrain|NetSharedStore|Fuzz" --output-on-failure; then
    echo "asan store suites: FAILED" >&2
    fail=1
  fi
else
  echo "== ASan store suites: skipped (--quick) =="
fi

# ---- 6. TSan suites -----------------------------------------------------
if [[ "$quick" == 0 ]]; then
  echo "== TSan (thread-heavy suites) =="
  cmake --preset tsan >/dev/null
  cmake --build --preset tsan -j"$(nproc)" >/dev/null
  if ! ctest --preset tsan --output-on-failure; then
    echo "tsan suites: FAILED" >&2
    fail=1
  fi
else
  echo "== TSan: skipped (--quick) =="
fi

if [[ "$fail" != 0 ]]; then
  echo "static checks: FAILED" >&2
  exit 1
fi
echo "static checks: OK"
