// Table 6: main experimental results. For every circuit, the first
// (L_A, L_B, N) combination (in increasing N_cyc0 order) that achieves
// complete coverage of the detectable faults; `initial` columns describe
// TS_0, `with lim. scan` columns the selected TS(I, D_1) applications.
//
// Differences from the paper (see DESIGN.md / EXPERIMENTS.md): every
// circuit except s27 is a profile-matched synthetic stand-in, and s35932
// is replaced by its 1/8-scale profile unless --full is given. Absolute
// det/cycles values therefore differ; the shape (TS_0 incomplete, limited
// scan completes; ls in (0,1); cheap combos win) is the comparison target.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rls;
  using namespace rls::bench;

  const bool full = has_flag(argc, argv, "full");
  const bool quick = has_flag(argc, argv, "quick");
  const std::string only = get_opt(argc, argv, "circuit", "");

  std::printf("=== Table 6: experimental results (D1 = 1..10 increasing) ===\n\n");
  report::Table table({"circuit", "LA,LB,N", "det0", "cycles0", "app", "det",
                       "cycles", "ls", "target", "complete"});
  const Stopwatch total;
  for (const std::string& name : table6_circuits(full)) {
    if (!only.empty() && only != name) continue;
    const Stopwatch clock;
    core::Workbench wb(name);
    core::CampaignOptions opt;
    // Big circuits get a bounded search so the default sweep stays
    // tractable on one core; pass --circuit=<name> for a focused deep run.
    const bool big = wb.nl().num_gates() > 2200;
    opt.max_attempts = quick ? 4 : (big ? 6 : 12);
    opt.p2.max_iterations = quick ? 10 : (big ? 20 : 32);
    core::RunContext ctx(opt);
    const core::ExperimentRow row = run_first_complete(wb, ctx);
    table.add_row(format_row(row, /*with_initial=*/true));
    std::fprintf(stderr, "[%s done in %.1fs]\n", name.c_str(), clock.seconds());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "det0/cycles0: faults detected by TS_0 and its clock cycles (initial).\n"
      "app: number of TS(I,D1) sets applied; det: total detected faults;\n"
      "cycles: total clock cycles incl. all applications; ls: average number\n"
      "of limited scan time units; target: detectable collapsed faults.\n");
  std::printf("[total %.1fs]\n", total.seconds());
  return 0;
}
