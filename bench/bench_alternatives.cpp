// Quantitative comparison of limited scan against the alternatives the
// paper's introduction lists: weighted random patterns, multiple seeds,
// and test points — all at comparable clock-cycle budgets, plus the
// signature-compaction (MISR) variant of the RLS flow itself.
#include <cstdio>

#include "analysis/test_points.hpp"
#include "bench_common.hpp"
#include "core/alternatives.hpp"
#include "core/baseline.hpp"
#include "core/procedure2.hpp"
#include "fault/seq_fsim.hpp"
#include "scan/cost.hpp"

namespace {

using namespace rls;
using rls::bench::Stopwatch;

struct Row {
  std::string method;
  std::size_t detected;
  std::uint64_t cycles;
  std::string note;
};

void compare_on(const char* name) {
  std::printf("--- %s ---\n", name);
  core::Workbench wb(name);
  const std::size_t n_sv = wb.nl().num_state_vars();
  const std::size_t target = wb.target_faults().size();

  // Reference: the RLS flow at its first complete combination.
  core::CampaignOptions rls_opt;
  rls_opt.p2.max_iterations = 24;
  rls_opt.max_combos_on_failure = 3;
  core::RunContext rls_ctx(rls_opt);
  const core::ExperimentRow rls_row = core::run_first_complete(wb, rls_ctx);
  const std::uint64_t budget = rls_row.result.total_cycles();
  const core::Combo combo = rls_row.combo;

  std::vector<Row> rows;
  rows.push_back({"RLS (limited scan)", rls_row.result.total_detected, budget,
                  rls_row.found_complete ? "complete" : "incomplete"});

  // RLS with MISR signature compaction (BIST-realistic observation).
  {
    core::Ts0Config cfg;
    cfg.l_a = combo.l_a;
    cfg.l_b = combo.l_b;
    cfg.n = combo.n;
    cfg.seed = wb.ts0_seed();
    const scan::TestSet ts0 = core::make_ts0(wb.nl(), cfg);
    fault::FaultList fl(wb.target_faults());
    fault::SeqFaultSim fsim(wb.cc());
    fsim.set_observation_mode(fault::ObservationMode::kSignature, 32);
    fsim.run_test_set(ts0, fl);
    std::uint64_t cycles = scan::n_cyc(ts0, n_sv);
    for (std::uint32_t i = 1; i <= 8 && !fl.all_detected() && cycles < budget;
         ++i) {
      for (std::uint32_t d1 = 1; d1 <= 10 && cycles < budget; ++d1) {
        core::LimitedScanParams p;
        p.iteration = i;
        p.d1 = d1;
        const scan::TestSet ts = core::make_limited_scan_set(ts0, n_sv, p);
        fsim.run_test_set(ts, fl);
        cycles += scan::n_cyc(ts, n_sv);
      }
    }
    rows.push_back({"RLS + 32-bit MISR", fl.num_detected(), cycles,
                    "signature compaction"});
  }

  // Plain budgeted random (single chain, same lengths).
  {
    fault::FaultList fl(wb.target_faults());
    core::BaselineConfig cfg;
    cfg.cycle_budget = budget;
    cfg.lengths = {combo.l_a, combo.l_b};
    cfg.max_chain_length = n_sv;
    const core::BaselineResult res =
        core::run_budgeted_random(wb.cc(), fl, cfg);
    rows.push_back({"plain random", res.detected, res.cycles_used, ""});
  }

  // Weighted random at the same budget.
  {
    const std::vector<double> w =
        core::derive_weights(wb.cc(), wb.target_faults());
    fault::FaultList fl(wb.target_faults());
    fault::SeqFaultSim fsim(wb.cc());
    std::uint64_t cycles = 0;
    std::uint64_t seed = wb.ts0_seed();
    while (cycles < budget && !fl.all_detected()) {
      core::Ts0Config cfg;
      cfg.l_a = combo.l_a;
      cfg.l_b = combo.l_b;
      cfg.n = combo.n;
      cfg.seed = seed++;
      const scan::TestSet ts = core::make_weighted_ts0(wb.nl(), cfg, w);
      fsim.run_test_set(ts, fl);
      cycles += scan::n_cyc(ts, n_sv);
    }
    rows.push_back({"weighted random", fl.num_detected(), cycles,
                    "COP-derived weights"});
  }

  // Multi-seed random at the same budget.
  {
    fault::FaultList fl(wb.target_faults());
    core::Ts0Config cfg;
    cfg.l_a = combo.l_a;
    cfg.l_b = combo.l_b;
    cfg.n = combo.n;
    cfg.seed = wb.ts0_seed();
    const std::uint64_t per_seed = scan::n_cyc0(n_sv, cfg.l_a, cfg.l_b, cfg.n);
    const std::size_t seeds = std::max<std::uint64_t>(1, budget / per_seed);
    const core::MultiSeedResult res =
        core::run_multi_seed(wb.cc(), fl, cfg, seeds);
    rows.push_back({"multi-seed random", res.detected, res.cycles,
                    std::to_string(res.seeds_used) + " seeds"});
  }

  // Test points + plain random at the same budget.
  {
    const analysis::TestPointPlan plan =
        analysis::select_test_points(wb.cc(), 4, 2);
    core::Workbench tp_wb(analysis::apply_test_points(wb.nl(), plan));
    fault::FaultList fl(tp_wb.target_faults());
    core::BaselineConfig cfg;
    cfg.cycle_budget = budget;
    cfg.lengths = {combo.l_a, combo.l_b};
    cfg.max_chain_length = tp_wb.nl().num_state_vars();
    const core::BaselineResult res =
        core::run_budgeted_random(tp_wb.cc(), fl, cfg);
    rows.push_back({"test points + random", res.detected, res.cycles_used,
                    "4 observe + 2 control; its own fault universe"});
  }

  report::Table table({"method", "det", "of", "cycles", "note"});
  for (const Row& r : rows) {
    table.add_row({r.method, std::to_string(r.detected),
                   std::to_string(target), report::format_cycles(r.cycles),
                   r.note});
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Stopwatch total;
  std::printf(
      "=== Alternatives to limited scan (intro of the paper), equal cycle "
      "budgets ===\n\n");
  const std::string only = rls::bench::get_opt(argc, argv, "circuit", "");
  for (const char* name : {"s208", "s420", "s953"}) {
    if (!only.empty() && only != name) continue;
    compare_on(name);
  }
  std::printf(
      "Note: the test-point row detects within its own (transformed) fault\n"
      "universe; all other rows share the original circuit's detectable\n"
      "universe. Shapes to check: RLS completes where plain/multi-seed\n"
      "random saturate below 100%%; weighted random and test points close\n"
      "part of the gap; the MISR variant tracks RLS minus small aliasing.\n");
  std::printf("[total %.1fs]\n", total.seconds());
  return 0;
}
