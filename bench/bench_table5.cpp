// Table 5: the first 10 (L_A, L_B, N) combinations by increasing N_cyc0,
// for N_SV = 21 (s382/s400) and N_SV = 74 (s1423). Purely analytic — this
// table reproduces the paper's numbers exactly.
#include <cstdio>

#include "core/param_select.hpp"
#include "report/format.hpp"

int main() {
  using namespace rls;
  std::printf("=== Table 5: Ncyc0 as a function of LA, LB and N ===\n\n");
  for (const std::size_t n_sv : {std::size_t{21}, std::size_t{74}}) {
    std::printf("NSV = %zu\n", n_sv);
    report::Table table({"LA", "LB", "N", "Ncyc0"});
    const auto combos = core::enumerate_default_combos(n_sv);
    for (std::size_t i = 0; i < 10 && i < combos.size(); ++i) {
      const core::Combo& c = combos[i];
      table.add_row({std::to_string(c.l_a), std::to_string(c.l_b),
                     std::to_string(c.n), std::to_string(c.ncyc0)});
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "(Paper check: NSV=21 first row 8,16,64 -> 4245; NSV=74 first row "
      "8,16,64 -> 11082.)\n");
  return 0;
}
