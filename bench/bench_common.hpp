// Shared helpers for the table-regeneration benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "report/format.hpp"

namespace rls::bench {

/// Simple flag lookup: returns true if `--name` appears in argv.
inline bool has_flag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == "--" + name) return true;
  }
  return false;
}

/// String option `--name=value`; returns fallback when absent.
inline std::string get_opt(int argc, char** argv, const std::string& name,
                           const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// The paper's Table 6 circuit list, with the 1/8-scale stand-in for
/// s35932 by default (pass --full to bench_table6 for the full profile).
inline std::vector<std::string> table6_circuits(bool full_scale) {
  std::vector<std::string> v{"s208", "s298", "s344", "s382", "s400",  "s420",
                             "s510", "s641", "s820", "s953", "s1196", "s1423",
                             "s5378"};
  v.push_back(full_scale ? "s35932" : "s35932s");
  for (const char* b : {"b01", "b02", "b03", "b04", "b06", "b09", "b10", "b11"}) {
    v.emplace_back(b);
  }
  return v;
}

/// Formats one experiment row in the paper's Table 6/7/8 layout.
inline std::vector<std::string> format_row(const core::ExperimentRow& row,
                                           bool with_initial) {
  using report::format_cycles;
  using report::format_fixed;
  std::vector<std::string> cells;
  cells.push_back(row.circuit);
  cells.push_back(std::to_string(row.combo.l_a) + "," +
                  std::to_string(row.combo.l_b) + "," +
                  std::to_string(row.combo.n));
  if (with_initial) {
    cells.push_back(std::to_string(row.result.ts0_detected));
    cells.push_back(format_cycles(row.result.ncyc0));
  }
  const std::size_t app = row.result.num_applications();
  cells.push_back(std::to_string(app));
  if (app == 0) {
    cells.push_back("");
    cells.push_back("");
    cells.push_back("");
  } else {
    cells.push_back(std::to_string(row.result.total_detected));
    cells.push_back(format_cycles(row.result.total_cycles()));
    cells.push_back(format_fixed(row.result.average_limited_scan_units(), 2));
  }
  cells.push_back(std::to_string(row.target_faults));
  cells.push_back(row.found_complete ? "yes" : "no");
  return cells;
}

}  // namespace rls::bench
