// Ablation studies for the design choices called out in DESIGN.md:
//   A. limited scan vs complete-scan insertion at the same time units
//      (the paper's motivation: limited scan buys the detections at a
//      fraction of the cycle cost);
//   B. Procedure-1 seeding mode (literal per-test reseeding vs one stream
//      per test set);
//   C. single chain + limited scan vs the [5]/[6] multi-chain budgeted
//      random baseline at the same cycle budget;
//   D. partial scan (paper Section 5 remark): limited scan still improves
//      coverage when only part of the state is scanned.
#include <cstdio>

#include "bench_common.hpp"
#include "core/baseline.hpp"
#include "core/procedure1.hpp"
#include "core/procedure2.hpp"
#include "core/ts0.hpp"
#include "fault/seq_fsim.hpp"
#include "rand/rng.hpp"
#include "scan/cost.hpp"

namespace {

using namespace rls;
using rls::bench::Stopwatch;

/// Replaces every limited scan operation by a complete scan operation
/// (shift = N_SV) at the same time units, keeping the scanned-in prefix.
scan::TestSet complete_scan_variant(const scan::TestSet& ts, std::size_t n_sv,
                                    std::uint64_t seed) {
  rls::rand::Rng rng(seed);
  scan::TestSet out = ts;
  for (auto& t : out.tests) {
    for (std::size_t u = 0; u < t.shift.size(); ++u) {
      if (t.shift[u] == 0) continue;
      t.shift[u] = static_cast<std::uint32_t>(n_sv);
      scan::BitVector bits = t.scan_bits[u];
      bits.resize(n_sv);
      for (std::size_t k = t.scan_bits[u].size(); k < n_sv; ++k) {
        bits[k] = rng.next_bit() ? 1 : 0;
      }
      t.scan_bits[u] = std::move(bits);
    }
  }
  return out;
}

void ablation_limited_vs_complete(const char* name) {
  std::printf("--- A. limited vs complete scan insertion (%s) ---\n", name);
  core::Workbench wb(name);
  const std::size_t n_sv = wb.nl().num_state_vars();
  core::Ts0Config cfg;
  cfg.seed = wb.ts0_seed();
  const scan::TestSet ts0 = core::make_ts0(wb.nl(), cfg);

  report::Table table({"variant", "I", "new det", "cycles", "cum det"});
  for (const bool complete : {false, true}) {
    fault::SeqFaultSim fsim(wb.cc());
    fault::FaultList fl(wb.target_faults());
    fsim.run_test_set(ts0, fl);
    const std::size_t ts0_det = fl.num_detected();
    std::uint64_t cycles = scan::n_cyc(ts0, n_sv);
    for (std::uint32_t i = 1; i <= 4; ++i) {
      core::LimitedScanParams p;
      p.iteration = i;
      p.d1 = 2;
      scan::TestSet ts = core::make_limited_scan_set(ts0, n_sv, p);
      if (complete) ts = complete_scan_variant(ts, n_sv, wb.ts0_seed() + i);
      const std::size_t newly = fsim.run_test_set(ts, fl);
      cycles += scan::n_cyc(ts, n_sv);
      table.add_row({complete ? "complete-scan" : "limited-scan",
                     std::to_string(i), std::to_string(newly),
                     report::format_cycles(cycles),
                     std::to_string(fl.num_detected())});
    }
    (void)ts0_det;
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Complete scan detects at least as much per application but costs\n"
      "N_SV cycles per operation; limited scan gets most of the benefit at\n"
      "a fraction of the cycles (the paper's motivation).\n\n");
}

void ablation_seeding(const char* name) {
  std::printf("--- B. Procedure 1 seeding mode (%s) ---\n", name);
  core::Workbench wb(name);
  report::Table table({"mode", "app", "det", "cycles", "complete"});
  for (const bool reseed : {true, false}) {
    core::CampaignOptions opt;
    opt.p2.reseed_per_test = reseed;
    opt.p2.max_iterations = 24;
    opt.max_combos_on_failure = 3;
    core::RunContext ctx(opt);
    const core::ExperimentRow row = core::run_first_complete(wb, ctx);
    table.add_row({reseed ? "per-test (paper literal)" : "per-test-set",
                   std::to_string(row.result.num_applications()),
                   std::to_string(row.result.total_detected),
                   report::format_cycles(row.result.total_cycles()),
                   row.found_complete ? "yes" : "no"});
  }
  std::printf("%s\n\n", table.to_string().c_str());
}

void ablation_baseline(const char* name) {
  std::printf("--- C. RLS vs [5]/[6]-style budgeted random (%s) ---\n", name);
  core::Workbench wb(name);
  core::CampaignOptions opt;
  opt.p2.max_iterations = 24;
  opt.max_combos_on_failure = 3;
  core::RunContext ctx(opt);
  const core::ExperimentRow row = core::run_first_complete(wb, ctx);
  const std::uint64_t budget = row.result.total_cycles();

  report::Table table({"method", "cycles", "det", "target"});
  table.add_row({"RLS (TS0 + limited scan)", report::format_cycles(budget),
                 std::to_string(row.result.total_detected),
                 std::to_string(wb.target_faults().size())});
  for (const std::size_t chain_len : {std::size_t{10}, std::size_t{100000}}) {
    fault::FaultList fl(wb.target_faults());
    core::BaselineConfig cfg;
    cfg.cycle_budget = budget;
    cfg.lengths = {row.combo.l_a, row.combo.l_b};
    cfg.max_chain_length = chain_len;
    const core::BaselineResult res = core::run_budgeted_random(wb.cc(), fl, cfg);
    table.add_row({chain_len == 10 ? "random, multi-chain (max 10) [5]/[6]"
                                   : "random, single chain",
                   report::format_cycles(res.cycles_used),
                   std::to_string(res.detected),
                   std::to_string(wb.target_faults().size())});
  }
  std::printf("%s\n\n", table.to_string().c_str());
}

void ablation_partial_scan(const char* name) {
  std::printf("--- D. partial scan (Section 5 remark) (%s) ---\n", name);
  // Model partial scan by restricting limited scan detections to a shorter
  // chain: only the first half of the flip-flops are scanned. We emulate
  // it by building a modified circuit view where unscanned flip-flops keep
  // functional behaviour but are excluded from shift operations — here,
  // approximated by comparing full-scan limited scan against TS_0-only on
  // the same circuit, plus full scan with half-length limited scans
  // (shifts capped at N_SV/2, partial observability).
  core::Workbench wb(name);
  const std::size_t n_sv = wb.nl().num_state_vars();
  core::Ts0Config cfg;
  cfg.seed = wb.ts0_seed();
  const scan::TestSet ts0 = core::make_ts0(wb.nl(), cfg);

  report::Table table({"variant", "det", "of"});
  {
    fault::SeqFaultSim fsim(wb.cc());
    fault::FaultList fl(wb.target_faults());
    fsim.run_test_set(ts0, fl);
    table.add_row({"TS0 only", std::to_string(fl.num_detected()),
                   std::to_string(fl.size())});
  }
  for (const bool capped : {true, false}) {
    fault::SeqFaultSim fsim(wb.cc());
    fault::FaultList fl(wb.target_faults());
    fsim.run_test_set(ts0, fl);
    for (std::uint32_t i = 1; i <= 4 && !fl.all_detected(); ++i) {
      core::LimitedScanParams p;
      p.iteration = i;
      p.d1 = 2;
      if (capped) p.d2 = static_cast<std::uint32_t>(n_sv / 2 + 1);
      const scan::TestSet ts = core::make_limited_scan_set(ts0, n_sv, p);
      fsim.run_test_set(ts, fl);
    }
    table.add_row({capped ? "limited scan, shifts <= NSV/2 (partial-like)"
                          : "limited scan, shifts <= NSV (full)",
                   std::to_string(fl.num_detected()),
                   std::to_string(fl.size())});
  }
  std::printf("%s\n\n", table.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* circuit =
      rls::bench::has_flag(argc, argv, "big") ? "s953" : "s420";
  const Stopwatch total;
  std::printf("=== Ablation studies (circuit: %s) ===\n\n", circuit);
  ablation_limited_vs_complete(circuit);
  ablation_seeding(circuit);
  ablation_baseline(circuit);
  ablation_partial_scan(circuit);
  std::printf("[total %.1fs]\n", total.seconds());
  return 0;
}
