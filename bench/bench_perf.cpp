// Microbenchmarks (google-benchmark): simulator and generator throughput.
// Not a paper table — engineering baselines for the library itself.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/sta.hpp"
#include "core/campaign.hpp"
#include "core/param_select.hpp"
#include "core/procedure1.hpp"
#include "core/ts0.hpp"
#include "fault/collapse.hpp"
#include "fault/comb_fsim.hpp"
#include "fault/seq_fsim.hpp"
#include "gen/registry.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/counters.hpp"
#include "rand/lfsr.hpp"
#include "rand/rng.hpp"
#include "sim/compiled.hpp"
#include "sim/seq_sim.hpp"
#include "store/artifact_store.hpp"
#include "store/checkpoint.hpp"
#include "store/serde.hpp"
#include "svc/request.hpp"
#include "svc/service.hpp"

namespace {

using namespace rls;

struct Fixture {
  netlist::Netlist nl;
  sim::CompiledCircuit cc;
  explicit Fixture(const char* name) : nl(gen::make_circuit(name)), cc(nl) {}
};

Fixture& fixture(const std::string& name) {
  static std::map<std::string, std::unique_ptr<Fixture>> cache;
  auto& slot = cache[name];
  if (!slot) slot = std::make_unique<Fixture>(name.c_str());
  return *slot;
}

void BM_CombEval(benchmark::State& state, const char* name) {
  Fixture& f = fixture(name);
  sim::SeqSim sim(f.cc);
  rls::rand::Rng rng(1);
  for (std::size_t k = 0; k < f.cc.inputs().size(); ++k) {
    sim.set_input(k, rng.next_u64());
  }
  std::uint64_t evals = 0;
  for (auto _ : state) {
    sim.eval();
    benchmark::DoNotOptimize(sim.values().data());
    evals += f.cc.order().size();
  }
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(evals), benchmark::Counter::kIsRate);
  state.counters["lanes"] = sim::kLanes;
}
BENCHMARK_CAPTURE(BM_CombEval, s298, "s298");
BENCHMARK_CAPTURE(BM_CombEval, s1423, "s1423");
BENCHMARK_CAPTURE(BM_CombEval, s5378, "s5378");

void BM_SeqFaultSimTs0(benchmark::State& state, const char* name) {
  Fixture& f = fixture(name);
  core::Ts0Config cfg;
  cfg.n = 8;
  const scan::TestSet ts0 = core::make_ts0(f.nl, cfg);
  const auto faults = fault::collapsed_universe(f.nl);
  // The simulator lives across iterations so its worker pool and worker
  // machines are reused — the steady-state Procedure 2 regime. Setup cost
  // is measured separately by BM_SeqFaultSimSetup.
  fault::SeqFaultSim fsim(f.cc);
  for (auto _ : state) {
    fault::FaultList fl(faults);
    fsim.run_test_set(ts0, fl);
    benchmark::DoNotOptimize(fl.num_detected());
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(fsim.gate_evals()), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_SeqFaultSimTs0, s298, "s298");
BENCHMARK_CAPTURE(BM_SeqFaultSimTs0, s953, "s953");
BENCHMARK_CAPTURE(BM_SeqFaultSimTs0, s5378, "s5378");

// Circuit compilation + simulator construction (cone closure, fanout CSR,
// thread-pool-free setup) — the cost BM_SeqFaultSimTs0 amortizes away.
void BM_SeqFaultSimSetup(benchmark::State& state, const char* name) {
  Fixture& f = fixture(name);
  for (auto _ : state) {
    sim::CompiledCircuit cc(f.nl);
    fault::SeqFaultSim fsim(cc);
    benchmark::DoNotOptimize(fsim.gate_evals());
  }
}
BENCHMARK_CAPTURE(BM_SeqFaultSimSetup, s953, "s953");
BENCHMARK_CAPTURE(BM_SeqFaultSimSetup, s5378, "s5378");

// Head-to-head engine comparison on one TS_0 sweep. gate_evals_per_sweep
// is the per-call evaluation count — the cone-restricted engine's ratio
// versus the full sweep is the headline reduction (BENCH_PR1.json).
void BM_SeqFaultSimEngines(benchmark::State& state, const char* name,
                           fault::Engine engine) {
  Fixture& f = fixture(name);
  core::Ts0Config cfg;
  cfg.n = 8;
  const scan::TestSet ts0 = core::make_ts0(f.nl, cfg);
  const auto faults = fault::collapsed_universe(f.nl);
  fault::SeqFaultSim fsim(f.cc);
  fsim.set_engine(engine);
  std::uint64_t evals_per_sweep = 0;
  for (auto _ : state) {
    fault::FaultList fl(faults);
    const std::uint64_t before = fsim.gate_evals();
    fsim.run_test_set(ts0, fl);
    evals_per_sweep = fsim.gate_evals() - before;
    benchmark::DoNotOptimize(fl.num_detected());
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(fsim.gate_evals()), benchmark::Counter::kIsRate);
  state.counters["gate_evals_per_sweep"] =
      static_cast<double>(evals_per_sweep);
}
BENCHMARK_CAPTURE(BM_SeqFaultSimEngines, s953_fullsweep, "s953",
                  fault::Engine::kFullSweep);
BENCHMARK_CAPTURE(BM_SeqFaultSimEngines, s953_conediff, "s953",
                  fault::Engine::kConeDiff);
BENCHMARK_CAPTURE(BM_SeqFaultSimEngines, s953_packed, "s953",
                  fault::Engine::kPacked);
BENCHMARK_CAPTURE(BM_SeqFaultSimEngines, s5378_fullsweep, "s5378",
                  fault::Engine::kFullSweep);
BENCHMARK_CAPTURE(BM_SeqFaultSimEngines, s5378_conediff, "s5378",
                  fault::Engine::kConeDiff);
BENCHMARK_CAPTURE(BM_SeqFaultSimEngines, s5378_packed, "s5378",
                  fault::Engine::kPacked);

// Packed (PPSFP) engine detail: one TS_0 sweep with the 64-pattern word
// engine, exporting the packed-specific work counters. gate_evals_per_sweep
// here counts word evaluations (64 patterns each) — the ratio against the
// conediff row of BM_SeqFaultSimEngines is the PR-6 headline.
void BM_PackedFsim(benchmark::State& state, const char* name) {
  Fixture& f = fixture(name);
  core::Ts0Config cfg;
  cfg.n = 8;
  const scan::TestSet ts0 = core::make_ts0(f.nl, cfg);
  const auto faults = fault::collapsed_universe(f.nl);
  fault::SeqFaultSim fsim(f.cc);
  fsim.set_engine(fault::Engine::kPacked);
  std::uint64_t evals_per_sweep = 0;
  std::uint64_t words_per_sweep = 0;
  std::uint64_t batches_per_sweep = 0;
  std::uint64_t lanes_per_sweep = 0;
  for (auto _ : state) {
    fault::FaultList fl(faults);
    const std::uint64_t evals0 = fsim.gate_evals();
    const std::uint64_t words0 = fsim.packed_words();
    const std::uint64_t batches0 = fsim.packed_batches();
    const std::uint64_t lanes0 = fsim.lanes_active();
    fsim.run_test_set(ts0, fl);
    evals_per_sweep = fsim.gate_evals() - evals0;
    words_per_sweep = fsim.packed_words() - words0;
    batches_per_sweep = fsim.packed_batches() - batches0;
    lanes_per_sweep = fsim.lanes_active() - lanes0;
    benchmark::DoNotOptimize(fl.num_detected());
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["gate_evals_per_sweep"] =
      static_cast<double>(evals_per_sweep);
  state.counters["packed_words_per_sweep"] =
      static_cast<double>(words_per_sweep);
  state.counters["packed_batches_per_sweep"] =
      static_cast<double>(batches_per_sweep);
  state.counters["lanes_active_per_sweep"] =
      static_cast<double>(lanes_per_sweep);
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(fsim.gate_evals()), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_PackedFsim, s953, "s953");
BENCHMARK_CAPTURE(BM_PackedFsim, s5378, "s5378");

// Static-prune payoff: one bounded Procedure 2 pass over the FULL collapsed
// fault universe of the tied-input s420t profile, with and without the sta
// prune mask (rls::analysis::sta proves 39 of its 832 collapsed faults
// untestable). Pruning only skips simulation of provably-undetectable
// faults, so `detected` is identical across the pair; the
// gate_evals_per_run drop at equal detections is the PR-9 headline
// (BENCH_PR9.json).
void BM_StaPrune(benchmark::State& state, const char* name, bool prune) {
  Fixture& f = fixture(name);
  core::Ts0Config cfg;
  cfg.n = 16;
  const scan::TestSet ts0 = core::make_ts0(f.nl, cfg);
  const auto faults = fault::collapsed_universe(f.nl);
  core::Procedure2Options p2;
  p2.sim_threads = 1;
  p2.d1_order = {1, 2};
  p2.max_iterations = 2;
  p2.n_same_fc = 1;
  std::size_t num_pruned = 0;
  if (prune) {
    const analysis::StaReport r = analysis::analyze(f.cc);
    const analysis::StaFaultClasses cls =
        analysis::classify_faults(r, f.cc, faults);
    num_pruned = cls.num_untestable;
    p2.prune_mask = std::make_shared<const std::vector<std::uint8_t>>(
        cls.untestable_mask());
  }
  std::uint64_t evals_per_run = 0;
  std::size_t detected = 0;
  for (auto _ : state) {
    core::RunContext ctx;
    ctx.set_timing(false);
    fault::FaultList fl(faults);
    const core::Procedure2Result res =
        core::run_procedure2(f.cc, ts0, fl, p2, &ctx);
    evals_per_run = ctx.counters().value("fsim.gate_evals");
    detected = res.total_detected;
    benchmark::DoNotOptimize(detected);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["pruned"] = static_cast<double>(num_pruned);
  state.counters["gate_evals_per_run"] = static_cast<double>(evals_per_run);
  state.counters["detected"] = static_cast<double>(detected);
}
BENCHMARK_CAPTURE(BM_StaPrune, s420t_unpruned, "s420t", false);
BENCHMARK_CAPTURE(BM_StaPrune, s420t_pruned, "s420t", true);

// Observability overhead contract: with no sink and no counter registry
// attached, instrumentation must cost <2% versus the PR-1 engine. Run the
// _off and _on variants and compare wall time; the _on variant also exports
// the per-sweep obs counters so bench_to_json.sh can fold them into the
// BENCH_PR2.json artifact.
void BM_ObsOverhead(benchmark::State& state, const char* name,
                    bool counters_attached) {
  Fixture& f = fixture(name);
  core::Ts0Config cfg;
  cfg.n = 8;
  const scan::TestSet ts0 = core::make_ts0(f.nl, cfg);
  const auto faults = fault::collapsed_universe(f.nl);
  fault::SeqFaultSim fsim(f.cc);
  obs::CounterRegistry reg;
  if (counters_attached) fsim.set_counters(&reg);
  for (auto _ : state) {
    fault::FaultList fl(faults);
    fsim.run_test_set(ts0, fl);
    benchmark::DoNotOptimize(fl.num_detected());
  }
  state.counters["faults"] = static_cast<double>(faults.size());
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(fsim.gate_evals()), benchmark::Counter::kIsRate);
  if (counters_attached) {
    const double sweeps = static_cast<double>(reg.value("fsim.sweeps"));
    for (const auto& [key, value] : reg.snapshot()) {
      state.counters["obs." + key + "_per_sweep"] =
          static_cast<double>(value) / sweeps;
    }
  }
}
BENCHMARK_CAPTURE(BM_ObsOverhead, s5378_off, "s5378", false);
BENCHMARK_CAPTURE(BM_ObsOverhead, s5378_on, "s5378", true);

// Speculative (L_A, L_B, N) combo sweep: serial vs a W-wide speculative
// window on s420, whose first small combinations fail under a bounded
// Procedure 2, so the window overlaps real (not wasted) work. Result
// equivalence across W is asserted by test_sweep_equiv; this measures the
// wall-clock payoff (BENCH_PR3.json headline).
void BM_ComboSweep(benchmark::State& state, const char* name, unsigned jobs) {
  static std::map<std::string, std::unique_ptr<core::Workbench>> wbs;
  auto& wb = wbs[name];
  if (!wb) wb = std::make_unique<core::Workbench>(name);
  core::Procedure2Options p2;
  p2.sim_threads = 1;  // all parallelism comes from the combo window
  p2.max_iterations = 2;
  p2.n_same_fc = 1;
  p2.d1_order = {1, 2};
  std::size_t attempts = 0;
  for (auto _ : state) {
    std::vector<core::ComboRun> runs;
    const auto hit =
        core::first_complete_combo(wb->cc(), wb->target_faults(), p2,
                                   wb->ts0_seed(), &runs, 4, nullptr, jobs);
    attempts = runs.size();
    benchmark::DoNotOptimize(hit.has_value());
  }
  state.counters["jobs"] = static_cast<double>(jobs);
  state.counters["attempts"] = static_cast<double>(attempts);
}
BENCHMARK_CAPTURE(BM_ComboSweep, s420_w1, "s420", 1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ComboSweep, s420_w2, "s420", 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ComboSweep, s420_w4, "s420", 4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_ComboSweep, s420_w8, "s420", 8)
    ->Unit(benchmark::kMillisecond);

/// Fresh scratch directory for the store benchmarks, removed on scope exit.
struct BenchScratch {
  std::string path;
  explicit BenchScratch(const char* tag) {
    path = (std::filesystem::temp_directory_path() /
            (std::string("rls-bench-") + tag + "-XXXXXX"))
               .string();
    if (::mkdtemp(path.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed for " + path);
    }
  }
  ~BenchScratch() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// One full artifact roundtrip — encode a TS_0 test set, frame, crash-safe
// put (write + fsync + rename), get, unframe, decode — the steady-state
// cost a checkpointing campaign pays per save/load (BENCH_PR5.json).
void BM_StoreRoundTrip(benchmark::State& state, const char* name) {
  Fixture& f = fixture(name);
  core::Ts0Config cfg;
  const scan::TestSet ts0 = core::make_ts0(f.nl, cfg);
  const BenchScratch scratch("roundtrip");
  store::ArtifactStore astore(scratch.path);
  store::ArtifactKey key{"bench", store::digest_circuit(f.nl), {}};
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    store::ByteWriter w;
    store::write_test_set(w, ts0);
    bytes += astore.put(key, w.buffer());
    const auto body = astore.get(key);
    store::ByteReader r(*body, "bench");
    const scan::TestSet back = store::read_test_set(r);
    benchmark::DoNotOptimize(back.tests.size());
  }
  state.counters["artifact_bytes"] =
      static_cast<double>(bytes) / static_cast<double>(state.iterations());
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(2 * bytes), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_StoreRoundTrip, s953, "s953");
BENCHMARK_CAPTURE(BM_StoreRoundTrip, s5378, "s5378");

// Cold-versus-warm campaign: the same bounded first-complete sweep against
// an empty store (every iteration wipes it) and against a populated one
// (the second-run path — served entirely from artifacts, zero fault
// simulation). The cold/warm wall-time ratio is the PR-5 headline.
void BM_CampaignCached(benchmark::State& state, const char* name, bool warm) {
  static std::map<std::string, std::unique_ptr<core::Workbench>> wbs;
  auto& wb = wbs[name];
  if (!wb) wb = std::make_unique<core::Workbench>(name);
  core::CampaignOptions opts;
  opts.p2.sim_threads = 1;
  opts.p2.d1_order = {1, 2};
  opts.p2.max_iterations = 2;
  opts.p2.n_same_fc = 1;
  opts.max_attempts = 3;
  opts.max_combos_on_failure = 3;
  const BenchScratch scratch(warm ? "warm" : "cold");
  if (warm) {
    store::ArtifactStore astore(scratch.path);
    store::CampaignStore cs(astore, wb->nl(), wb->target_faults(), false);
    core::RunContext ctx(opts);
    ctx.set_store(&cs);
    (void)core::run_first_complete(*wb, ctx);
  }
  std::size_t attempts = 0;
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      std::error_code ec;
      std::filesystem::remove_all(scratch.path, ec);
      state.ResumeTiming();
    }
    store::ArtifactStore astore(scratch.path);
    store::CampaignStore cs(astore, wb->nl(), wb->target_faults(), false);
    core::RunContext ctx(opts);
    ctx.set_store(&cs);
    const core::ExperimentRow row = core::run_first_complete(*wb, ctx);
    attempts = row.attempts;
    benchmark::DoNotOptimize(row.result.total_detected);
  }
  state.counters["attempts"] = static_cast<double>(attempts);
}
BENCHMARK_CAPTURE(BM_CampaignCached, s298_cold, "s298", false)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CampaignCached, s298_warm, "s298", true)
    ->Unit(benchmark::kMillisecond);

// Campaign-service throughput: one submit_batch of pinned-combo requests
// driven through svc::CampaignService against a shared sharded store.
// Modes: "cold" (store wiped before each batch — every leader runs a full
// bounded campaign), "warm" (store pre-populated — executions are pure
// artifact reads), "coalesced" (warm + every distinct request duplicated
// 4x — single-flight dedup serves 3 of every 4 responses from the
// leader's run without re-executing). requests/s is the headline; the
// svc.coalesced_per_batch counter proves the dedup (BENCH_PR7.json).
void BM_ServeThroughput(benchmark::State& state, const char* name,
                        const char* mode_str, unsigned workers) {
  const std::string_view mode(mode_str);
  const bool cold = mode == "cold";
  const unsigned dups = mode == "coalesced" ? 4 : 1;
  // Four distinct pinned (L_A, L_B, N) combos; bounded Procedure 2 and
  // classification so an execution measures the service + store
  // machinery, not open-ended ATPG.
  static constexpr std::uint64_t kPins[4][3] = {
      {8, 16, 16}, {8, 16, 64}, {8, 32, 16}, {8, 32, 64}};
  const auto make_request = [&](std::size_t combo, unsigned dup) {
    svc::CampaignRequest req;
    req.id = "b" + std::to_string(combo) + "d" + std::to_string(dup);
    req.circuit = name;
    req.la = kPins[combo][0];
    req.lb = kPins[combo][1];
    req.n = kPins[combo][2];
    req.options.p2.sim_threads = 1;
    req.options.p2.max_iterations = 4;
    req.options.p2.n_same_fc = 1;
    req.options.detect.random_rounds = 8;
    req.options.detect.backtrack_limit = 100;
    return req;
  };
  const auto make_batch = [&] {
    std::vector<svc::CampaignRequest> batch;
    for (std::size_t combo = 0; combo < 4; ++combo) {
      for (unsigned dup = 0; dup < dups; ++dup) {
        batch.push_back(make_request(combo, dup));
      }
    }
    return batch;
  };
  const BenchScratch scratch("serve");
  svc::ServiceConfig cfg;
  cfg.store_dir = scratch.path;
  cfg.workers = workers;
  cfg.queue_capacity = 64;
  if (!cold) {  // pre-populate the store so timed executions are reads
    svc::CampaignService warmup(cfg);
    for (auto& fu : warmup.submit_batch(make_batch())) fu.get();
  }
  std::uint64_t requests = 0;
  double coalesced_per_batch = 0.0;
  for (auto _ : state) {
    if (cold) {
      state.PauseTiming();
      std::error_code ec;
      std::filesystem::remove_all(scratch.path, ec);
      state.ResumeTiming();
    }
    svc::CampaignService service(cfg);
    auto futures = service.submit_batch(make_batch());
    std::size_t ok = 0;
    for (auto& fu : futures) ok += fu.get().ok ? 1 : 0;
    service.shutdown();
    requests += futures.size();
    coalesced_per_batch =
        static_cast<double>(service.counters().value("svc.coalesced"));
    if (ok != futures.size()) {
      state.SkipWithError("campaign request failed");
      break;
    }
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["batch_requests"] = static_cast<double>(4 * dups);
  state.counters["svc.coalesced_per_batch"] = coalesced_per_batch;
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
// MeasureProcessCPUTime so the rate counters see the scheduler/worker
// threads' work, not just the submitting thread's.
BENCHMARK_CAPTURE(BM_ServeThroughput, s298_cold_w1, "s298", "cold", 1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeThroughput, s298_warm_w1, "s298", "warm", 1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeThroughput, s298_warm_w4, "s298", "warm", 4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeThroughput, s298_coalesced_w4, "s298", "coalesced",
                  4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeThroughput, s5378_warm_w1, "s5378", "warm", 1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeThroughput, s5378_coalesced_w4, "s5378",
                  "coalesced", 4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

/// The BM_ServeThroughput workload pushed through the full TCP loopback
/// path (NetClient -> NetServer -> CampaignService): NDJSON framing,
/// per-connection reader/writer threads, and envelope serialization on
/// top of the service. Compare against the matching BM_ServeThroughput
/// row for the transport tax, and warm_w1 vs warm_w4 for how requests/s
/// scales with --workers when the wire is the same.
void BM_NetThroughput(benchmark::State& state, const char* name,
                      const char* mode_str, unsigned workers) {
  const std::string_view mode(mode_str);
  const bool cold = mode == "cold";
  const unsigned dups = mode == "coalesced" ? 4 : 1;
  static constexpr std::uint64_t kPins[4][3] = {
      {8, 16, 16}, {8, 16, 64}, {8, 32, 16}, {8, 32, 64}};
  const auto make_request = [&](std::size_t combo, unsigned dup) {
    svc::CampaignRequest req;
    req.id = "b" + std::to_string(combo) + "d" + std::to_string(dup);
    req.circuit = name;
    req.la = kPins[combo][0];
    req.lb = kPins[combo][1];
    req.n = kPins[combo][2];
    req.options.p2.sim_threads = 1;
    req.options.p2.max_iterations = 4;
    req.options.p2.n_same_fc = 1;
    req.options.detect.random_rounds = 8;
    req.options.detect.backtrack_limit = 100;
    return req;
  };
  const auto make_batch = [&] {
    std::vector<svc::CampaignRequest> batch;
    for (std::size_t combo = 0; combo < 4; ++combo) {
      for (unsigned dup = 0; dup < dups; ++dup) {
        batch.push_back(make_request(combo, dup));
      }
    }
    return batch;
  };
  const BenchScratch scratch("net");
  svc::ServiceConfig cfg;
  cfg.store_dir = scratch.path;
  cfg.workers = workers;
  cfg.queue_capacity = 64;
  if (!cold) {
    svc::CampaignService warmup(cfg);
    for (auto& fu : warmup.submit_batch(make_batch())) fu.get();
  }
  std::uint64_t requests = 0;
  double coalesced_per_batch = 0.0;
  for (auto _ : state) {
    if (cold) {
      state.PauseTiming();
      std::error_code ec;
      std::filesystem::remove_all(scratch.path, ec);
      state.ResumeTiming();
    }
    svc::CampaignService service(cfg);
    net::NetServer server(service, net::NetConfig{});
    net::NetClient client("127.0.0.1", server.port());
    const std::vector<svc::CampaignRequest> batch = make_batch();
    for (const svc::CampaignRequest& req : batch) {
      client.send_line(req.canonical_json());
    }
    client.shutdown_write();
    std::size_t ok = 0;
    while (const auto line = client.recv_line()) {
      ok += line->find("\"ok\":true") != std::string::npos;
    }
    server.shutdown();
    service.shutdown();
    requests += batch.size();
    coalesced_per_batch =
        static_cast<double>(service.counters().value("svc.coalesced"));
    if (ok != batch.size()) {
      state.SkipWithError("campaign request failed over loopback");
      break;
    }
  }
  state.counters["workers"] = static_cast<double>(workers);
  state.counters["batch_requests"] = static_cast<double>(4 * dups);
  state.counters["svc.coalesced_per_batch"] = coalesced_per_batch;
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_NetThroughput, s298_cold_w1, "s298", "cold", 1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_NetThroughput, s298_warm_w1, "s298", "warm", 1)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_NetThroughput, s298_warm_w4, "s298", "warm", 4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK_CAPTURE(BM_NetThroughput, s298_coalesced_w4, "s298", "coalesced", 4)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_CombFaultSimRound(benchmark::State& state, const char* name) {
  Fixture& f = fixture(name);
  fault::CombFaultSim fsim(f.cc);
  rls::rand::Rng rng(2);
  std::vector<sim::Word> pi(f.cc.inputs().size()), ppi(f.cc.flip_flops().size());
  const auto faults = fault::collapsed_universe(f.nl);
  for (auto _ : state) {
    for (auto& w : pi) w = rng.next_u64();
    for (auto& w : ppi) w = rng.next_u64();
    fsim.set_patterns(pi, ppi);
    std::size_t det = 0;
    for (const auto& flt : faults) det += fsim.detect_mask(flt) != 0;
    benchmark::DoNotOptimize(det);
  }
  state.counters["faults"] = static_cast<double>(faults.size());
}
BENCHMARK_CAPTURE(BM_CombFaultSimRound, s1423, "s1423");
BENCHMARK_CAPTURE(BM_CombFaultSimRound, s5378, "s5378");

void BM_Lfsr(benchmark::State& state) {
  rls::rand::GaloisLfsr lfsr(32, 0xACE1);
  std::uint64_t bits = 0;
  for (auto _ : state) {
    bits += lfsr.next_bits(32);
    benchmark::DoNotOptimize(bits);
  }
}
BENCHMARK(BM_Lfsr);

void BM_SynthesizeCircuit(benchmark::State& state, const char* name) {
  for (auto _ : state) {
    const netlist::Netlist nl = gen::make_circuit(name);
    benchmark::DoNotOptimize(nl.num_gates());
  }
}
BENCHMARK_CAPTURE(BM_SynthesizeCircuit, s1423, "s1423");
BENCHMARK_CAPTURE(BM_SynthesizeCircuit, s5378, "s5378");

void BM_Procedure1Schedule(benchmark::State& state) {
  Fixture& f = fixture("s953");
  core::Ts0Config cfg;
  const scan::TestSet ts0 = core::make_ts0(f.nl, cfg);
  core::LimitedScanParams p;
  p.d1 = 3;
  for (auto _ : state) {
    const scan::TestSet ts =
        core::make_limited_scan_set(ts0, f.nl.num_state_vars(), p);
    benchmark::DoNotOptimize(ts.total_shift());
  }
}
BENCHMARK(BM_Procedure1Schedule);

}  // namespace

BENCHMARK_MAIN();
