// Table 8: for selected circuits, several (L_A, L_B, N) combinations —
// larger values reduce the number of (I, D_1) pairs that must be stored,
// usually at the price of more clock cycles.
#include <array>
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rls;
  using namespace rls::bench;
  const bool quick = has_flag(argc, argv, "quick");

  // The paper's per-circuit combination lists (Table 8).
  struct Entry {
    const char* circuit;
    std::vector<std::array<std::size_t, 3>> combos;
  };
  const std::vector<Entry> entries{
      {"s208", {{8, 16, 64}, {8, 32, 64}, {8, 64, 64}, {8, 128, 64}}},
      {"s420",
       {{8, 32, 128}, {16, 64, 128}, {32, 64, 128}, {64, 256, 64},
        {16, 256, 256}}},
      {"s641", {{16, 256, 128}, {8, 128, 256}, {16, 256, 256}}},
      {"s953", {{8, 16, 64}, {8, 32, 64}, {8, 64, 64}}},
      {"s1196", {{16, 128, 256}, {32, 128, 256}}},
      {"s1423",
       {{16, 64, 64}, {32, 64, 64}, {8, 128, 64}, {16, 256, 64},
        {8, 256, 128}, {32, 256, 128}}},
      {"b09",
       {{8, 16, 64}, {8, 32, 64}, {8, 64, 64}, {32, 64, 64}, {16, 128, 64},
        {8, 256, 64}}},
  };

  std::printf("=== Table 8: different combinations of LA, LB and N ===\n\n");
  report::Table table({"circuit", "LA,LB,N", "det0", "cycles0", "app", "det",
                       "cycles", "ls", "target", "complete"});
  const Stopwatch total;
  for (const Entry& e : entries) {
    const Stopwatch clock;
    core::Workbench wb(e.circuit);
    core::CampaignOptions opt;
    opt.p2.max_iterations = quick ? 12 : 24;
    for (const auto& [la, lb, n] : e.combos) {
      core::RunContext ctx(opt);
      const core::ExperimentRow row =
          run_single_combo(wb, core::Combo{la, lb, n, 0}, ctx);
      table.add_row(format_row(row, /*with_initial=*/true));
    }
    table.add_separator();
    std::fprintf(stderr, "[%s done in %.1fs]\n", e.circuit, clock.seconds());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check vs the paper: within a circuit, larger (LA,LB,N) should\n"
      "reduce `app` (fewer (I,D1) pairs to store) while `cycles` tends to\n"
      "grow.\n");
  std::printf("[total %.1fs]\n", total.seconds());
  return 0;
}
