// Table 4: numbers of clock cycles for s420 over the (L_A, L_B, N) grid.
#include "bench_grid.hpp"

int main(int argc, char** argv) {
  std::printf("=== Table 4: numbers of clock cycles for s420 ===\n\n");
  rls::bench::run_grid("s420", argc, argv);
  return 0;
}
