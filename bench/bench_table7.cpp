// Table 7: the same experiment as Table 6 but sweeping D_1 = 10, 9, ..., 1
// (preference for fewer limited scan operations, i.e. longer at-speed
// sequences). Expected shape vs Table 6: lower `ls`, usually more applied
// pairs, cycles moving both ways.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace rls;
  using namespace rls::bench;

  const bool full = has_flag(argc, argv, "full");
  const bool quick = has_flag(argc, argv, "quick");
  const std::string only = get_opt(argc, argv, "circuit", "");

  std::printf("=== Table 7: using D1 = 10,9,...,1 in Procedure 2 ===\n\n");
  report::Table table({"circuit", "LA,LB,N", "app", "det", "cycles", "ls",
                       "target", "complete"});
  const Stopwatch total;
  for (const std::string& name : table6_circuits(full)) {
    if (!only.empty() && only != name) continue;
    const Stopwatch clock;
    core::Workbench wb(name);
    core::CampaignOptions opt;
    // Big circuits get a bounded search so the default sweep stays
    // tractable on one core; pass --circuit=<name> for a focused deep run.
    const bool big = wb.nl().num_gates() > 2200;
    opt.max_attempts = quick ? 4 : (big ? 2 : 10);
    opt.p2.d1_order = {10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
    opt.p2.max_iterations = quick ? 10 : (big ? 10 : 24);
    core::RunContext ctx(opt);
    const core::ExperimentRow row = run_first_complete(wb, ctx);
    table.add_row(format_row(row, /*with_initial=*/false));
    std::fprintf(stderr, "[%s done in %.1fs]\n", name.c_str(), clock.seconds());
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Same (LA,LB,N) selection policy as Table 6; only the D1 sweep order\n"
      "changes. Compare ls against Table 6: decreasing order gives longer\n"
      "at-speed sequences (lower ls).\n");
  std::printf("[total %.1fs]\n", total.seconds());
  return 0;
}
