// Shared implementation of the Table 3 / Table 4 (L_A, L_B, N) grids:
// for every combination with L_A < L_B, run Procedure 2 to completion and
// report N_cyc (dash if complete coverage is not reached), next to the
// analytic N_cyc0 grid.
#pragma once

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/param_select.hpp"
#include "scan/cost.hpp"

namespace rls::bench {

inline void run_grid(const std::string& circuit, int argc, char** argv) {
  const Stopwatch clock;
  const bool quick = has_flag(argc, argv, "quick");
  core::Workbench wb(circuit);
  std::printf(
      "Circuit %s: N_SV=%zu, %zu collapsed faults, %zu detectable targets\n\n",
      wb.name().c_str(), wb.nl().num_state_vars(), wb.universe().size(),
      wb.target_faults().size());

  core::Procedure2Options opt;
  opt.max_iterations = quick ? 12 : 40;

  const auto& las = core::default_la_choices();
  const auto& lbs = core::default_lb_choices();
  const auto& ns = core::default_n_choices();

  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, std::string> ncyc;
  for (std::size_t n : ns) {
    for (std::size_t la : las) {
      for (std::size_t lb : lbs) {
        if (la >= lb) continue;
        core::Combo combo{la, lb, n,
                          scan::n_cyc0(wb.nl().num_state_vars(), la, lb, n)};
        const core::ComboRun run =
            core::run_combo(wb.cc(), wb.target_faults(), combo, opt,
                            wb.ts0_seed());
        ncyc[{n, la, lb}] = run.result.complete
                                ? report::format_cycles(run.result.total_cycles())
                                : "-";
      }
    }
  }

  auto print_grid = [&](const char* title, bool analytic) {
    std::printf("%s\n", title);
    std::vector<std::string> header{"N", "LA"};
    for (std::size_t lb : lbs) header.push_back("LB=" + std::to_string(lb));
    report::Table table(header);
    for (std::size_t n : ns) {
      for (std::size_t la : las) {
        bool any = false;
        std::vector<std::string> row{"N=" + std::to_string(n),
                                     std::to_string(la)};
        for (std::size_t lb : lbs) {
          if (la >= lb) {
            row.push_back("");
            continue;
          }
          any = true;
          if (analytic) {
            row.push_back(report::format_cycles(
                scan::n_cyc0(wb.nl().num_state_vars(), la, lb, n)));
          } else {
            row.push_back(ncyc[{n, la, lb}]);
          }
        }
        if (any) table.add_row(row);
      }
      table.add_separator();
    }
    std::printf("%s\n", table.to_string().c_str());
  };

  print_grid("Ncyc (measured; '-' = complete coverage not reached)", false);
  print_grid("Ncyc0 (analytic; reproduces the paper exactly)", true);
  std::printf("[elapsed %.1fs]\n", clock.seconds());
}

}  // namespace rls::bench
