// Transition-fault study: the at-speed dimension of the paper.
//
// (1) Transition coverage of random scan tests vs the at-speed sequence
//     length L (the motivation for [5]/[6]'s multi-vector tests: L = 1
//     detects NO transition faults);
// (2) the stuck-at / transition tension of limited scan frequency: higher
//     D_1 (fewer limited scan operations, paper Table 7) preserves more
//     at-speed launch pairs, so transition coverage grows with D_1 while
//     the stuck-at benefit of limited scan shrinks.
#include <cstdio>

#include "bench_common.hpp"
#include "core/procedure1.hpp"
#include "core/ts0.hpp"
#include "fault/collapse.hpp"
#include "gen/registry.hpp"
#include "fault/seq_fsim.hpp"
#include "fault/transition.hpp"
#include "rand/rng.hpp"
#include "scan/cost.hpp"

namespace {

using namespace rls;
using rls::bench::Stopwatch;

void sweep_sequence_length(const char* name) {
  std::printf("--- (1) transition coverage vs at-speed sequence length (%s) ---\n",
              name);
  const netlist::Netlist nl = gen::make_circuit(name);
  const sim::CompiledCircuit cc(nl);
  const auto universe = fault::transition_universe(nl);

  report::Table table({"L", "tests", "vectors", "det", "of", "coverage"});
  for (const std::size_t len : {1u, 2u, 4u, 8u, 16u, 32u}) {
    fault::SeqTransitionFaultSim fsim(cc);
    fault::TransitionFaultList fl(universe);
    rls::rand::Rng rng(0xA75BEEF);
    scan::TestSet ts;
    const std::size_t budget_vectors = 2048;
    for (std::size_t i = 0; i < budget_vectors / len; ++i) {
      scan::ScanTest t;
      t.scan_in.resize(nl.num_state_vars());
      for (auto& b : t.scan_in) b = rng.next_bit();
      t.vectors.resize(len);
      for (auto& v : t.vectors) {
        v.resize(nl.num_inputs());
        for (auto& b : v) b = rng.next_bit();
      }
      ts.tests.push_back(std::move(t));
    }
    fsim.run_test_set(ts, fl);
    table.add_row({std::to_string(len), std::to_string(ts.size()),
                   std::to_string(ts.total_vectors()),
                   std::to_string(fl.num_detected()),
                   std::to_string(fl.size()),
                   report::format_fixed(100.0 * fl.coverage(), 1) + "%"});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void sweep_d1(const char* name) {
  std::printf(
      "--- (2) stuck-at vs transition coverage as D1 varies (%s) ---\n", name);
  const netlist::Netlist nl = gen::make_circuit(name);
  const sim::CompiledCircuit cc(nl);
  const std::size_t n_sv = nl.num_state_vars();
  core::Ts0Config cfg;
  cfg.l_a = 16;
  cfg.l_b = 32;
  cfg.n = 64;
  const scan::TestSet ts0 = core::make_ts0(nl, cfg);

  report::Table table({"D1", "ls", "stuck-at det", "transition det"});
  const auto sa_universe = fault::collapsed_universe(nl);
  const auto tr_universe = fault::transition_universe(nl);
  for (const std::uint32_t d1 : {1u, 2u, 5u, 10u, 0u}) {
    scan::TestSet ts;
    if (d1 == 0) {
      ts = ts0;  // no limited scan at all
    } else {
      core::LimitedScanParams p;
      p.d1 = d1;
      ts = core::make_limited_scan_set(ts0, n_sv, p);
    }
    fault::FaultList sa(sa_universe);
    fault::SeqFaultSim sa_sim(cc);
    sa_sim.run_test_set(ts, sa);

    fault::TransitionFaultList tr(tr_universe);
    fault::SeqTransitionFaultSim tr_sim(cc);
    tr_sim.run_test_set(ts, tr);

    table.add_row({d1 == 0 ? "none" : std::to_string(d1),
                   report::format_fixed(scan::average_limited_scan_units(ts), 2),
                   std::to_string(sa.num_detected()),
                   std::to_string(tr.num_detected())});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape: stuck-at detection peaks at small D1 (many limited scans);\n"
      "transition detection grows toward large D1 / none (longer at-speed\n"
      "runs) — the tradeoff the paper manages by sweeping D1.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Stopwatch total;
  const std::string only = rls::bench::get_opt(argc, argv, "circuit", "");
  std::printf("=== Transition-fault (at-speed) study ===\n\n");
  for (const char* name : {"s298", "s953"}) {
    if (!only.empty() && only != name) continue;
    sweep_sequence_length(name);
    sweep_d1(name);
  }
  std::printf("[total %.1fs]\n", total.seconds());
  return 0;
}
