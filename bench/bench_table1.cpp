// Regenerates Table 1 (s27 test without / with a limited scan operation)
// and Table 2 (timing-accurate expansion) from the paper's Section 2.
//
// Fault-free columns reproduce the paper bit-for-bit. The paper's
// illustration fault `f` is unnamed; we print a concrete fault with the
// same behaviour (undetected by the plain test, detected on the primary
// output at time unit 3 once the limited scan is inserted).
#include <cstdio>

#include "fault/fault.hpp"
#include "fault/seq_fsim.hpp"
#include "gen/s27.hpp"
#include "report/format.hpp"
#include "scan/schedule.hpp"
#include "sim/compiled.hpp"
#include "sim/seq_sim.hpp"

namespace {

using namespace rls;

const scan::BitVector kSi{0, 0, 1};
const std::vector<scan::BitVector> kT{
    {0, 1, 1, 1}, {1, 0, 0, 1}, {0, 1, 1, 1}, {1, 0, 0, 1}, {0, 1, 0, 0}};

std::string bits_to_string(const std::vector<std::uint8_t>& bits) {
  std::string s;
  for (std::uint8_t b : bits) s += static_cast<char>('0' + b);
  return s;
}

/// Simulates the test with an optional single fault in lane 1 (lane 0 is
/// fault-free), printing the paper's S(u), Z(u) columns as good/faulty.
void print_trace(const sim::CompiledCircuit& cc, const scan::ScanTest& t,
                 const fault::Fault* f, const char* title) {
  std::printf("%s\n", title);
  report::Table table({"u", "shift(u)", "T(u)", "S(u)", "Z(u)"});
  sim::SeqSim s(cc);
  s.load_state_broadcast(t.scan_in);

  auto dual_state = [&] {
    std::string good, bad;
    for (std::size_t k = 0; k < 3; ++k) {
      good += sim::lane_bit(s.state_word(k), 0) ? '1' : '0';
      bad += sim::lane_bit(s.state_word(k), 1) ? '1' : '0';
    }
    return good + "/" + bad;
  };

  for (std::size_t u = 0; u < t.vectors.size(); ++u) {
    const std::uint32_t sh = u < t.shift.size() ? t.shift[u] : 0;
    for (std::uint32_t j = 0; j < sh; ++j) {
      s.shift(sim::broadcast(t.scan_bits[u][j] != 0));
    }
    s.set_inputs_broadcast(t.vectors[u]);
    // Dual-machine evaluation: lane 1 carries the fault.
    auto vals = s.mutable_values();
    for (netlist::SignalId id : cc.order()) {
      sim::Word w = cc.eval_gate(id, vals);
      if (f && f->pin >= 0 && id == f->gate) {
        const bool bit = cc.eval_gate_lane(id, vals, 1, f->pin, f->stuck != 0);
        w = sim::with_lane(w, 1, bit);
      }
      if (f && f->pin < 0 && id == f->gate) {
        w = sim::with_lane(w, 1, f->stuck != 0);
      }
      vals[id] = w;
    }
    const std::string z =
        std::string(1, sim::lane_bit(vals[cc.outputs()[0]], 0) ? '1' : '0') +
        "/" + (sim::lane_bit(vals[cc.outputs()[0]], 1) ? '1' : '0');
    table.add_row({std::to_string(u), std::to_string(sh),
                   bits_to_string(t.vectors[u]), dual_state(), z});
    s.clock();
    // DFF D-pin faults corrupt the captured value (lane 1 only).
    if (f && f->pin >= 0 &&
        cc.nl().gate(f->gate).type == netlist::GateType::kDff) {
      for (std::size_t k = 0; k < cc.flip_flops().size(); ++k) {
        if (cc.flip_flops()[k] == f->gate) {
          auto v = s.mutable_values();
          v[f->gate] = sim::with_lane(v[f->gate], 1, f->stuck != 0);
        }
      }
    }
  }
  table.add_row({std::to_string(t.vectors.size()), "", "", dual_state(), ""});
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  const netlist::Netlist nl = gen::make_s27();
  const sim::CompiledCircuit cc(nl);

  scan::ScanTest plain;
  plain.scan_in = kSi;
  plain.vectors = kT;

  scan::ScanTest limited = plain;
  limited.shift = {0, 0, 0, 1, 0};
  limited.scan_bits = {{}, {}, {}, {0}, {}};

  // Find a fault with the paper's behaviour: undetected by the plain test,
  // detected with the limited scan operation.
  fault::SeqFaultSim fsim(cc);
  fault::Fault f{};
  bool found = false;
  for (const fault::Fault& cand : fault::full_universe(nl)) {
    // Prefer a fault on the combinational logic so the dual-machine trace
    // below shows the divergence in S(u)/Z(u) directly.
    if (nl.gate(cand.gate).type == netlist::GateType::kDff) continue;
    const fault::Fault group[1] = {cand};
    if ((fsim.run_test(plain, group) & 1) == 0 &&
        (fsim.run_test(limited, group) & 1) == 1) {
      f = cand;
      found = true;
      break;
    }
  }

  std::printf("=== Table 1: a test for s27 ===\n");
  std::printf("Test tau = (SI, T), SI = 001, T = (0111, 1001, 0111, 1001, 0100)\n");
  if (found) {
    std::printf("Illustration fault f = %s\n\n", fault_name(nl, f).c_str());
  }
  print_trace(cc, plain, found ? &f : nullptr,
              "(a) Without limited scan  [fault undetected]");
  print_trace(cc, limited, found ? &f : nullptr,
              "(b) With limited scan: shift(3) = 1, scan-in bit 0  "
              "[fault detected at the PO at time unit 3]");

  std::printf("=== Table 2: timing-accurate view of Table 1(b) ===\n");
  const auto cycles = scan::expand_schedule(limited, /*include_scan_out=*/true);
  std::printf("%s\n", scan::to_string(cycles).c_str());
  std::printf(
      "Total cycles excluding the overlapped scan-out: %llu "
      "(N_SV=3 scan-in + 5 vectors + 1 limited-scan shift)\n",
      static_cast<unsigned long long>(
          scan::test_cycles_excluding_scan_out(limited)));
  return 0;
}
