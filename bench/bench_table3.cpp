// Table 3: numbers of clock cycles for s208 over the (L_A, L_B, N) grid.
#include "bench_grid.hpp"

int main(int argc, char** argv) {
  std::printf("=== Table 3: numbers of clock cycles for s208 ===\n\n");
  rls::bench::run_grid("s208", argc, argv);
  return 0;
}
