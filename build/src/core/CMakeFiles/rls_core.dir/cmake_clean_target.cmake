file(REMOVE_RECURSE
  "librls_core.a"
)
