file(REMOVE_RECURSE
  "CMakeFiles/rls_core.dir/alternatives.cpp.o"
  "CMakeFiles/rls_core.dir/alternatives.cpp.o.d"
  "CMakeFiles/rls_core.dir/baseline.cpp.o"
  "CMakeFiles/rls_core.dir/baseline.cpp.o.d"
  "CMakeFiles/rls_core.dir/campaign.cpp.o"
  "CMakeFiles/rls_core.dir/campaign.cpp.o.d"
  "CMakeFiles/rls_core.dir/param_select.cpp.o"
  "CMakeFiles/rls_core.dir/param_select.cpp.o.d"
  "CMakeFiles/rls_core.dir/procedure1.cpp.o"
  "CMakeFiles/rls_core.dir/procedure1.cpp.o.d"
  "CMakeFiles/rls_core.dir/procedure2.cpp.o"
  "CMakeFiles/rls_core.dir/procedure2.cpp.o.d"
  "CMakeFiles/rls_core.dir/ts0.cpp.o"
  "CMakeFiles/rls_core.dir/ts0.cpp.o.d"
  "librls_core.a"
  "librls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
