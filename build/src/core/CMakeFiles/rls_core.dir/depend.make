# Empty dependencies file for rls_core.
# This may be replaced when dependencies are built.
