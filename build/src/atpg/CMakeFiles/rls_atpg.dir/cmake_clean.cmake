file(REMOVE_RECURSE
  "CMakeFiles/rls_atpg.dir/detectability.cpp.o"
  "CMakeFiles/rls_atpg.dir/detectability.cpp.o.d"
  "CMakeFiles/rls_atpg.dir/podem.cpp.o"
  "CMakeFiles/rls_atpg.dir/podem.cpp.o.d"
  "librls_atpg.a"
  "librls_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
