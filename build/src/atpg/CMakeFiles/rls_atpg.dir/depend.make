# Empty dependencies file for rls_atpg.
# This may be replaced when dependencies are built.
