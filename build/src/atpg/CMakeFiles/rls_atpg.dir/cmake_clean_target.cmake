file(REMOVE_RECURSE
  "librls_atpg.a"
)
