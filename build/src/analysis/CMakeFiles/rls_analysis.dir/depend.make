# Empty dependencies file for rls_analysis.
# This may be replaced when dependencies are built.
