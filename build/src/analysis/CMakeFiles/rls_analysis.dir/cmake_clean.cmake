file(REMOVE_RECURSE
  "CMakeFiles/rls_analysis.dir/cop.cpp.o"
  "CMakeFiles/rls_analysis.dir/cop.cpp.o.d"
  "CMakeFiles/rls_analysis.dir/test_points.cpp.o"
  "CMakeFiles/rls_analysis.dir/test_points.cpp.o.d"
  "librls_analysis.a"
  "librls_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
