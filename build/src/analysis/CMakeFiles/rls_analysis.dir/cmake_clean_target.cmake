file(REMOVE_RECURSE
  "librls_analysis.a"
)
