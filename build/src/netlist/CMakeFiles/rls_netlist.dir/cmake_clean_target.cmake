file(REMOVE_RECURSE
  "librls_netlist.a"
)
