# Empty compiler generated dependencies file for rls_netlist.
# This may be replaced when dependencies are built.
