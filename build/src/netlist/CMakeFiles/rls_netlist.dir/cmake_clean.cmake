file(REMOVE_RECURSE
  "CMakeFiles/rls_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/rls_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/rls_netlist.dir/levelize.cpp.o"
  "CMakeFiles/rls_netlist.dir/levelize.cpp.o.d"
  "CMakeFiles/rls_netlist.dir/netlist.cpp.o"
  "CMakeFiles/rls_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/rls_netlist.dir/stats.cpp.o"
  "CMakeFiles/rls_netlist.dir/stats.cpp.o.d"
  "CMakeFiles/rls_netlist.dir/types.cpp.o"
  "CMakeFiles/rls_netlist.dir/types.cpp.o.d"
  "CMakeFiles/rls_netlist.dir/validate.cpp.o"
  "CMakeFiles/rls_netlist.dir/validate.cpp.o.d"
  "librls_netlist.a"
  "librls_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
