
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bist/misr.cpp" "src/bist/CMakeFiles/rls_bist.dir/misr.cpp.o" "gcc" "src/bist/CMakeFiles/rls_bist.dir/misr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rand/CMakeFiles/rls_rand.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rls_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
