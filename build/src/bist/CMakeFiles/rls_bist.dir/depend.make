# Empty dependencies file for rls_bist.
# This may be replaced when dependencies are built.
