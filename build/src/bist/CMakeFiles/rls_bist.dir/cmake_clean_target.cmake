file(REMOVE_RECURSE
  "librls_bist.a"
)
