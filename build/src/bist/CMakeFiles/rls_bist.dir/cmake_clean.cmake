file(REMOVE_RECURSE
  "CMakeFiles/rls_bist.dir/misr.cpp.o"
  "CMakeFiles/rls_bist.dir/misr.cpp.o.d"
  "librls_bist.a"
  "librls_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
