file(REMOVE_RECURSE
  "CMakeFiles/rls_gen.dir/profiles.cpp.o"
  "CMakeFiles/rls_gen.dir/profiles.cpp.o.d"
  "CMakeFiles/rls_gen.dir/registry.cpp.o"
  "CMakeFiles/rls_gen.dir/registry.cpp.o.d"
  "CMakeFiles/rls_gen.dir/s27.cpp.o"
  "CMakeFiles/rls_gen.dir/s27.cpp.o.d"
  "CMakeFiles/rls_gen.dir/synth.cpp.o"
  "CMakeFiles/rls_gen.dir/synth.cpp.o.d"
  "librls_gen.a"
  "librls_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
