file(REMOVE_RECURSE
  "librls_gen.a"
)
