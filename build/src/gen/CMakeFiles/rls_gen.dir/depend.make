# Empty dependencies file for rls_gen.
# This may be replaced when dependencies are built.
