file(REMOVE_RECURSE
  "CMakeFiles/rls_sim.dir/compiled.cpp.o"
  "CMakeFiles/rls_sim.dir/compiled.cpp.o.d"
  "CMakeFiles/rls_sim.dir/event_sim.cpp.o"
  "CMakeFiles/rls_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/rls_sim.dir/seq_sim.cpp.o"
  "CMakeFiles/rls_sim.dir/seq_sim.cpp.o.d"
  "CMakeFiles/rls_sim.dir/tv_logic.cpp.o"
  "CMakeFiles/rls_sim.dir/tv_logic.cpp.o.d"
  "librls_sim.a"
  "librls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
