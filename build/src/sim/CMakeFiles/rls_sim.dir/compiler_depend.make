# Empty compiler generated dependencies file for rls_sim.
# This may be replaced when dependencies are built.
