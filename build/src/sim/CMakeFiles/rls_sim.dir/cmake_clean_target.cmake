file(REMOVE_RECURSE
  "librls_sim.a"
)
