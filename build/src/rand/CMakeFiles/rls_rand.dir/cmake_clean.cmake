file(REMOVE_RECURSE
  "CMakeFiles/rls_rand.dir/lfsr.cpp.o"
  "CMakeFiles/rls_rand.dir/lfsr.cpp.o.d"
  "librls_rand.a"
  "librls_rand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_rand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
