# Empty dependencies file for rls_rand.
# This may be replaced when dependencies are built.
