file(REMOVE_RECURSE
  "librls_rand.a"
)
