file(REMOVE_RECURSE
  "librls_report.a"
)
