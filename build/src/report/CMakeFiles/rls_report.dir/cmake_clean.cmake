file(REMOVE_RECURSE
  "CMakeFiles/rls_report.dir/format.cpp.o"
  "CMakeFiles/rls_report.dir/format.cpp.o.d"
  "librls_report.a"
  "librls_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
