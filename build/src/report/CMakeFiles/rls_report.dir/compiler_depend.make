# Empty compiler generated dependencies file for rls_report.
# This may be replaced when dependencies are built.
