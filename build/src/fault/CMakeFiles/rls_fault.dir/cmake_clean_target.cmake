file(REMOVE_RECURSE
  "librls_fault.a"
)
