# Empty dependencies file for rls_fault.
# This may be replaced when dependencies are built.
