file(REMOVE_RECURSE
  "CMakeFiles/rls_fault.dir/collapse.cpp.o"
  "CMakeFiles/rls_fault.dir/collapse.cpp.o.d"
  "CMakeFiles/rls_fault.dir/comb_fsim.cpp.o"
  "CMakeFiles/rls_fault.dir/comb_fsim.cpp.o.d"
  "CMakeFiles/rls_fault.dir/fault.cpp.o"
  "CMakeFiles/rls_fault.dir/fault.cpp.o.d"
  "CMakeFiles/rls_fault.dir/seq_fsim.cpp.o"
  "CMakeFiles/rls_fault.dir/seq_fsim.cpp.o.d"
  "CMakeFiles/rls_fault.dir/transition.cpp.o"
  "CMakeFiles/rls_fault.dir/transition.cpp.o.d"
  "librls_fault.a"
  "librls_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
