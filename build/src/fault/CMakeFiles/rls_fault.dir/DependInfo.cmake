
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/collapse.cpp" "src/fault/CMakeFiles/rls_fault.dir/collapse.cpp.o" "gcc" "src/fault/CMakeFiles/rls_fault.dir/collapse.cpp.o.d"
  "/root/repo/src/fault/comb_fsim.cpp" "src/fault/CMakeFiles/rls_fault.dir/comb_fsim.cpp.o" "gcc" "src/fault/CMakeFiles/rls_fault.dir/comb_fsim.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/rls_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/rls_fault.dir/fault.cpp.o.d"
  "/root/repo/src/fault/seq_fsim.cpp" "src/fault/CMakeFiles/rls_fault.dir/seq_fsim.cpp.o" "gcc" "src/fault/CMakeFiles/rls_fault.dir/seq_fsim.cpp.o.d"
  "/root/repo/src/fault/transition.cpp" "src/fault/CMakeFiles/rls_fault.dir/transition.cpp.o" "gcc" "src/fault/CMakeFiles/rls_fault.dir/transition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/rls_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/rls_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/rls_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/rls_rand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
