file(REMOVE_RECURSE
  "CMakeFiles/rls_scan.dir/chain.cpp.o"
  "CMakeFiles/rls_scan.dir/chain.cpp.o.d"
  "CMakeFiles/rls_scan.dir/cost.cpp.o"
  "CMakeFiles/rls_scan.dir/cost.cpp.o.d"
  "CMakeFiles/rls_scan.dir/schedule.cpp.o"
  "CMakeFiles/rls_scan.dir/schedule.cpp.o.d"
  "librls_scan.a"
  "librls_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
