# Empty compiler generated dependencies file for rls_scan.
# This may be replaced when dependencies are built.
