file(REMOVE_RECURSE
  "librls_scan.a"
)
