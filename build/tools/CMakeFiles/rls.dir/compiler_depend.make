# Empty compiler generated dependencies file for rls.
# This may be replaced when dependencies are built.
