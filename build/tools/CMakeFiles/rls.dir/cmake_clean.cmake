file(REMOVE_RECURSE
  "CMakeFiles/rls.dir/rls_cli.cpp.o"
  "CMakeFiles/rls.dir/rls_cli.cpp.o.d"
  "rls"
  "rls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
