file(REMOVE_RECURSE
  "CMakeFiles/test_test_points.dir/test_test_points.cpp.o"
  "CMakeFiles/test_test_points.dir/test_test_points.cpp.o.d"
  "test_test_points"
  "test_test_points.pdb"
  "test_test_points[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_test_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
