file(REMOVE_RECURSE
  "CMakeFiles/test_cop.dir/test_cop.cpp.o"
  "CMakeFiles/test_cop.dir/test_cop.cpp.o.d"
  "test_cop"
  "test_cop.pdb"
  "test_cop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
