# Empty dependencies file for test_cop.
# This may be replaced when dependencies are built.
