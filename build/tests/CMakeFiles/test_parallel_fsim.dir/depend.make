# Empty dependencies file for test_parallel_fsim.
# This may be replaced when dependencies are built.
