file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_fsim.dir/test_parallel_fsim.cpp.o"
  "CMakeFiles/test_parallel_fsim.dir/test_parallel_fsim.cpp.o.d"
  "test_parallel_fsim"
  "test_parallel_fsim.pdb"
  "test_parallel_fsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
