# Empty compiler generated dependencies file for test_procedure1.
# This may be replaced when dependencies are built.
