file(REMOVE_RECURSE
  "CMakeFiles/test_procedure1.dir/test_procedure1.cpp.o"
  "CMakeFiles/test_procedure1.dir/test_procedure1.cpp.o.d"
  "test_procedure1"
  "test_procedure1.pdb"
  "test_procedure1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procedure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
