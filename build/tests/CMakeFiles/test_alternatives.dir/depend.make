# Empty dependencies file for test_alternatives.
# This may be replaced when dependencies are built.
