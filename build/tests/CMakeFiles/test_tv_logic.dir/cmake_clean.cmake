file(REMOVE_RECURSE
  "CMakeFiles/test_tv_logic.dir/test_tv_logic.cpp.o"
  "CMakeFiles/test_tv_logic.dir/test_tv_logic.cpp.o.d"
  "test_tv_logic"
  "test_tv_logic.pdb"
  "test_tv_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tv_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
