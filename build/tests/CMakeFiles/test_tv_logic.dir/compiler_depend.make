# Empty compiler generated dependencies file for test_tv_logic.
# This may be replaced when dependencies are built.
