# Empty compiler generated dependencies file for test_ts0.
# This may be replaced when dependencies are built.
