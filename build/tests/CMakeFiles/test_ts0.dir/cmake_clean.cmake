file(REMOVE_RECURSE
  "CMakeFiles/test_ts0.dir/test_ts0.cpp.o"
  "CMakeFiles/test_ts0.dir/test_ts0.cpp.o.d"
  "test_ts0"
  "test_ts0.pdb"
  "test_ts0[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ts0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
