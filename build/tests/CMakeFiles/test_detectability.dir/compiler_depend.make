# Empty compiler generated dependencies file for test_detectability.
# This may be replaced when dependencies are built.
