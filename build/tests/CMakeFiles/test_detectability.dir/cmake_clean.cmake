file(REMOVE_RECURSE
  "CMakeFiles/test_detectability.dir/test_detectability.cpp.o"
  "CMakeFiles/test_detectability.dir/test_detectability.cpp.o.d"
  "test_detectability"
  "test_detectability.pdb"
  "test_detectability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detectability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
