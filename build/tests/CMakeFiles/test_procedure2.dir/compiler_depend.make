# Empty compiler generated dependencies file for test_procedure2.
# This may be replaced when dependencies are built.
