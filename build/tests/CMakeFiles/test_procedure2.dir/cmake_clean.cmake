file(REMOVE_RECURSE
  "CMakeFiles/test_procedure2.dir/test_procedure2.cpp.o"
  "CMakeFiles/test_procedure2.dir/test_procedure2.cpp.o.d"
  "test_procedure2"
  "test_procedure2.pdb"
  "test_procedure2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procedure2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
