# Empty dependencies file for test_param_select.
# This may be replaced when dependencies are built.
