file(REMOVE_RECURSE
  "CMakeFiles/test_param_select.dir/test_param_select.cpp.o"
  "CMakeFiles/test_param_select.dir/test_param_select.cpp.o.d"
  "test_param_select"
  "test_param_select.pdb"
  "test_param_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_param_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
