
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_misr.cpp" "tests/CMakeFiles/test_misr.dir/test_misr.cpp.o" "gcc" "tests/CMakeFiles/test_misr.dir/test_misr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/rls_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rls_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/rls_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/rls_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/rls_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/rls_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/rls_report.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/rls_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/rand/CMakeFiles/rls_rand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
