file(REMOVE_RECURSE
  "CMakeFiles/test_comb_fsim.dir/test_comb_fsim.cpp.o"
  "CMakeFiles/test_comb_fsim.dir/test_comb_fsim.cpp.o.d"
  "test_comb_fsim"
  "test_comb_fsim.pdb"
  "test_comb_fsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comb_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
