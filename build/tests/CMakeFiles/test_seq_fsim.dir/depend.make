# Empty dependencies file for test_seq_fsim.
# This may be replaced when dependencies are built.
