file(REMOVE_RECURSE
  "CMakeFiles/test_seq_fsim.dir/test_seq_fsim.cpp.o"
  "CMakeFiles/test_seq_fsim.dir/test_seq_fsim.cpp.o.d"
  "test_seq_fsim"
  "test_seq_fsim.pdb"
  "test_seq_fsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_fsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
