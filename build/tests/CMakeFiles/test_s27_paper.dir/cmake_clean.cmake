file(REMOVE_RECURSE
  "CMakeFiles/test_s27_paper.dir/test_s27_paper.cpp.o"
  "CMakeFiles/test_s27_paper.dir/test_s27_paper.cpp.o.d"
  "test_s27_paper"
  "test_s27_paper.pdb"
  "test_s27_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_s27_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
