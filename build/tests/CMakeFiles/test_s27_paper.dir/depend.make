# Empty dependencies file for test_s27_paper.
# This may be replaced when dependencies are built.
