file(REMOVE_RECURSE
  "CMakeFiles/test_cost_paper.dir/test_cost_paper.cpp.o"
  "CMakeFiles/test_cost_paper.dir/test_cost_paper.cpp.o.d"
  "test_cost_paper"
  "test_cost_paper.pdb"
  "test_cost_paper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
