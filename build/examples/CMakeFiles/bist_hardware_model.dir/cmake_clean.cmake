file(REMOVE_RECURSE
  "CMakeFiles/bist_hardware_model.dir/bist_hardware_model.cpp.o"
  "CMakeFiles/bist_hardware_model.dir/bist_hardware_model.cpp.o.d"
  "bist_hardware_model"
  "bist_hardware_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_hardware_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
