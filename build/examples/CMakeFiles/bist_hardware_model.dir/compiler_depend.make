# Empty compiler generated dependencies file for bist_hardware_model.
# This may be replaced when dependencies are built.
