# Empty compiler generated dependencies file for s27_walkthrough.
# This may be replaced when dependencies are built.
