file(REMOVE_RECURSE
  "CMakeFiles/s27_walkthrough.dir/s27_walkthrough.cpp.o"
  "CMakeFiles/s27_walkthrough.dir/s27_walkthrough.cpp.o.d"
  "s27_walkthrough"
  "s27_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s27_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
