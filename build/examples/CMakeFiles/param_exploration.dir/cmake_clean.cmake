file(REMOVE_RECURSE
  "CMakeFiles/param_exploration.dir/param_exploration.cpp.o"
  "CMakeFiles/param_exploration.dir/param_exploration.cpp.o.d"
  "param_exploration"
  "param_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
