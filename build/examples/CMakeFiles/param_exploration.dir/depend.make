# Empty dependencies file for param_exploration.
# This may be replaced when dependencies are built.
